"""Tests for repro.data.preprocess (encoders, scalers, pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.preprocess import (
    MinMaxScaler,
    OneHotEncoder,
    OrdinalEncoder,
    PreprocessingPipeline,
    StandardScaler,
)
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError


class TestOneHotEncoder:
    def test_round_trip_known_values(self):
        encoder = OneHotEncoder()
        encoded = encoder.fit_transform(["a", "b", "a", "c"])
        assert encoded.shape == (4, 3)
        np.testing.assert_allclose(encoded.sum(axis=1), 1.0)

    def test_unknown_value_maps_to_zero_vector(self):
        encoder = OneHotEncoder(categories=["a", "b"]).fit(["a", "b"])
        encoded = encoder.transform(["z"])
        np.testing.assert_allclose(encoded, [[0.0, 0.0]])

    def test_fixed_categories_preserve_order(self):
        encoder = OneHotEncoder(categories=["b", "a"]).fit([])
        assert encoder.categories == ("b", "a")
        np.testing.assert_allclose(encoder.transform(["b"]), [[1.0, 0.0]])

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            OneHotEncoder().transform(["a"])


class TestOrdinalEncoder:
    def test_codes_are_stable(self):
        encoder = OrdinalEncoder().fit(["b", "a", "c"])
        np.testing.assert_allclose(encoder.transform(["a", "b", "c"]), [0.0, 1.0, 2.0])

    def test_unknown_value_is_minus_one(self):
        encoder = OrdinalEncoder().fit(["a"])
        np.testing.assert_allclose(encoder.transform(["zzz"]), [-1.0])

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            OrdinalEncoder().transform(["a"])


class TestMinMaxScaler:
    def test_output_range(self):
        data = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        scaled = MinMaxScaler().fit_transform(data)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0
        np.testing.assert_allclose(scaled[:, 0], [0.0, 0.5, 1.0])

    def test_constant_column_maps_to_zero(self):
        data = np.array([[1.0, 3.0], [1.0, 4.0]])
        scaled = MinMaxScaler().fit_transform(data)
        np.testing.assert_allclose(scaled[:, 0], 0.0)

    def test_out_of_range_values_clipped(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [1.0]]))
        np.testing.assert_allclose(scaler.transform([[2.0]]), [[1.0]])

    def test_clipping_can_be_disabled(self):
        scaler = MinMaxScaler(clip=False).fit(np.array([[0.0], [1.0]]))
        np.testing.assert_allclose(scaler.transform([[2.0]]), [[2.0]])

    def test_inverse_transform_roundtrip(self):
        data = np.array([[1.0, 5.0], [3.0, 9.0]])
        scaler = MinMaxScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_mismatched_columns_raise(self):
        scaler = MinMaxScaler().fit(np.ones((2, 3)))
        with pytest.raises(DataValidationError):
            scaler.transform(np.ones((2, 4)))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform([[1.0]])


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        data = np.random.default_rng(0).normal(5.0, 2.0, size=(200, 3))
        scaled = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_handled(self):
        data = np.array([[2.0, 1.0], [2.0, 3.0]])
        scaled = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(scaled[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self):
        data = np.array([[1.0, 5.0], [3.0, 9.0], [4.0, 2.0]])
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform([[1.0]])


class TestPreprocessingPipeline:
    def test_output_is_numeric_and_bounded(self, small_dataset):
        pipeline = PreprocessingPipeline()
        matrix = pipeline.fit_transform(small_dataset)
        assert matrix.dtype == float
        assert np.all(np.isfinite(matrix))
        assert matrix.min() >= 0.0 and matrix.max() <= 1.0

    def test_output_width_matches_feature_names(self, small_dataset):
        pipeline = PreprocessingPipeline()
        matrix = pipeline.fit_transform(small_dataset)
        assert matrix.shape[1] == pipeline.n_features_out
        assert len(pipeline.feature_names_out) == matrix.shape[1]

    def test_onehot_adds_columns(self, small_dataset):
        onehot = PreprocessingPipeline(categorical_encoding="onehot").fit(small_dataset)
        ordinal = PreprocessingPipeline(categorical_encoding="ordinal").fit(small_dataset)
        assert onehot.n_features_out > ordinal.n_features_out
        assert ordinal.n_features_out == 41

    def test_transform_unseen_data_uses_training_statistics(self, small_split):
        train, test = small_split
        pipeline = PreprocessingPipeline()
        pipeline.fit(train)
        transformed = pipeline.transform(test)
        assert transformed.shape[0] == len(test)
        assert transformed.min() >= 0.0 and transformed.max() <= 1.0

    def test_zscore_scaling(self, small_dataset):
        pipeline = PreprocessingPipeline(scaling="zscore")
        matrix = pipeline.fit_transform(small_dataset)
        # One-hot columns are not exactly zero mean, but means must be finite and small.
        assert np.all(np.isfinite(matrix))

    def test_no_scaling(self, small_dataset):
        pipeline = PreprocessingPipeline(scaling="none", log_transform=False)
        matrix = pipeline.fit_transform(small_dataset)
        source = small_dataset.column("src_bytes").astype(float)
        column = pipeline.feature_names_out.index("src_bytes")
        np.testing.assert_allclose(matrix[:, column], source)

    def test_log_transform_compresses_heavy_tails(self, small_dataset):
        with_log = PreprocessingPipeline(scaling="none", log_transform=True)
        matrix = with_log.fit_transform(small_dataset)
        column = with_log.feature_names_out.index("src_bytes")
        raw_max = small_dataset.column("src_bytes").astype(float).max()
        assert matrix[:, column].max() <= np.log1p(raw_max) + 1e-9

    def test_invalid_options_rejected(self):
        with pytest.raises(ConfigurationError):
            PreprocessingPipeline(categorical_encoding="hashing")
        with pytest.raises(ConfigurationError):
            PreprocessingPipeline(scaling="robust")

    def test_transform_before_fit_raises(self, small_dataset):
        with pytest.raises(NotFittedError):
            PreprocessingPipeline().transform(small_dataset)

    def test_feature_names_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            PreprocessingPipeline().feature_names_out

    def test_transform_is_deterministic(self, small_dataset):
        pipeline = PreprocessingPipeline().fit(small_dataset)
        np.testing.assert_array_equal(
            pipeline.transform(small_dataset), pipeline.transform(small_dataset)
        )
