"""Tests for repro.core.config (SomTrainingConfig and GhsomConfig)."""

from __future__ import annotations

import pytest

from repro.core.config import GhsomConfig, SomTrainingConfig
from repro.exceptions import ConfigurationError


class TestSomTrainingConfig:
    def test_defaults_are_valid(self):
        config = SomTrainingConfig()
        assert config.epochs >= 1
        assert 0 < config.learning_rate <= 1

    def test_round_trip_dict(self):
        config = SomTrainingConfig(epochs=7, learning_rate=0.3, neighborhood="bubble")
        assert SomTrainingConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"learning_rate": 0.0},
            {"learning_rate": 1.5},
            {"initial_radius": -1.0},
            {"neighborhood": "donut"},
            {"decay": "warp"},
            {"metric": "cosine"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SomTrainingConfig(**kwargs)


class TestGhsomConfig:
    def test_defaults_are_valid(self):
        config = GhsomConfig()
        assert 0 < config.tau1 <= 1
        assert 0 < config.tau2 <= 1
        assert config.max_depth >= 1

    def test_round_trip_dict(self):
        config = GhsomConfig(tau1=0.25, tau2=0.07, max_depth=4, training=SomTrainingConfig(epochs=3))
        rebuilt = GhsomConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.training.epochs == 3

    def test_with_updates_creates_modified_copy(self):
        config = GhsomConfig(tau1=0.3)
        updated = config.with_updates(tau1=0.1)
        assert updated.tau1 == 0.1
        assert config.tau1 == 0.3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tau1": 0.0},
            {"tau1": 1.5},
            {"tau2": -0.1},
            {"max_depth": 0},
            {"initial_rows": 1},
            {"initial_cols": 1},
            {"max_map_size": 3},
            {"max_growth_rounds": -1},
            {"min_samples_for_expansion": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            GhsomConfig(**kwargs)

    def test_from_dict_accepts_training_config_instance(self):
        payload = GhsomConfig().to_dict()
        payload["training"] = SomTrainingConfig(epochs=2)
        assert GhsomConfig.from_dict(payload).training.epochs == 2
