"""Tests for the flat-SOM and k-means baseline detectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.kmeans import KMeans, KMeansDetector
from repro.baselines.som_detector import SomDetector
from repro.core.config import SomTrainingConfig
from repro.eval.metrics import binary_metrics
from repro.exceptions import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def fitted_som_detector(train_matrix, train_categories):
    detector = SomDetector(8, 8, training=SomTrainingConfig(epochs=8), random_state=0)
    detector.fit(train_matrix, train_categories)
    return detector


@pytest.fixture(scope="module")
def fitted_kmeans_detector(train_matrix, train_categories):
    detector = KMeansDetector(n_clusters=30, random_state=0)
    detector.fit(train_matrix, train_categories)
    return detector


class TestKMeansClustering:
    def test_centroid_count(self, blob_data):
        model = KMeans(n_clusters=3, random_state=0).fit(blob_data)
        assert model.centroids.shape == (3, blob_data.shape[1])

    def test_blobs_recovered(self, blob_data):
        """With k equal to the true blob count, each blob maps to a single cluster."""
        model = KMeans(n_clusters=3, random_state=0).fit(blob_data)
        assignments = model.predict(blob_data)
        for start in (0, 80, 160):
            block = assignments[start : start + 80]
            assert len(set(block.tolist())) == 1

    def test_inertia_decreases_with_more_clusters(self, blob_data):
        small = KMeans(n_clusters=2, random_state=0).fit(blob_data)
        large = KMeans(n_clusters=6, random_state=0).fit(blob_data)
        assert large.inertia_ < small.inertia_

    def test_transform_distances_nonnegative(self, blob_data):
        model = KMeans(n_clusters=3, random_state=0).fit(blob_data)
        assert model.transform(blob_data).min() >= 0.0

    def test_too_few_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            KMeans(n_clusters=10, random_state=0).fit(np.ones((3, 2)))

    def test_predict_before_fit_raises(self, blob_data):
        with pytest.raises(ConfigurationError):
            KMeans(n_clusters=2).predict(blob_data)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            KMeans(n_clusters=0)
        with pytest.raises(ConfigurationError):
            KMeans(n_clusters=2, max_iterations=0)

    def test_reproducible_with_seed(self, blob_data):
        first = KMeans(n_clusters=3, random_state=3).fit(blob_data)
        second = KMeans(n_clusters=3, random_state=3).fit(blob_data)
        np.testing.assert_allclose(first.centroids, second.centroids)


class TestSomDetector:
    def test_detection_quality(self, fitted_som_detector, test_matrix, test_binary_truth):
        metrics = binary_metrics(test_binary_truth, fitted_som_detector.predict(test_matrix))
        assert metrics.detection_rate > 0.8
        assert metrics.false_positive_rate < 0.2

    def test_scores_match_predictions(self, fitted_som_detector, test_matrix):
        scores = fitted_som_detector.score_samples(test_matrix)
        np.testing.assert_array_equal(
            fitted_som_detector.predict(test_matrix), (scores > 1.0).astype(int)
        )

    def test_predict_category_values(self, fitted_som_detector, test_matrix):
        categories = fitted_som_detector.predict_category(test_matrix)
        assert set(categories).issubset({"normal", "dos", "probe", "r2l", "u2r", "unknown"})

    def test_unfitted_raises(self, test_matrix):
        with pytest.raises(NotFittedError):
            SomDetector(4, 4).predict(test_matrix)

    def test_too_small_map_rejected(self):
        with pytest.raises(ConfigurationError):
            SomDetector(1, 5)

    def test_oneclass_mode(self, train_matrix, test_matrix):
        detector = SomDetector(8, 8, training=SomTrainingConfig(epochs=6), random_state=0)
        detector.fit(train_matrix)
        predictions = detector.predict(test_matrix)
        assert set(np.unique(predictions)).issubset({0, 1})
        assert detector.labeler is None

    def test_fixed_capacity(self, fitted_som_detector):
        assert fitted_som_detector.model.n_units == 64


class TestKMeansDetector:
    def test_detection_quality(self, fitted_kmeans_detector, test_matrix, test_binary_truth):
        metrics = binary_metrics(test_binary_truth, fitted_kmeans_detector.predict(test_matrix))
        assert metrics.detection_rate > 0.75
        assert metrics.false_positive_rate < 0.2

    def test_scores_match_predictions(self, fitted_kmeans_detector, test_matrix):
        scores = fitted_kmeans_detector.score_samples(test_matrix)
        np.testing.assert_array_equal(
            fitted_kmeans_detector.predict(test_matrix), (scores > 1.0).astype(int)
        )

    def test_cluster_count_clamped_to_samples(self):
        data = np.random.default_rng(0).random((20, 5))
        detector = KMeansDetector(n_clusters=100, random_state=0)
        detector.fit(data)
        assert detector.model.n_clusters == 20

    def test_predict_category_values(self, fitted_kmeans_detector, test_matrix):
        categories = fitted_kmeans_detector.predict_category(test_matrix)
        assert set(categories).issubset({"normal", "dos", "probe", "r2l", "u2r", "unknown"})

    def test_unfitted_raises(self, test_matrix):
        with pytest.raises(NotFittedError):
            KMeansDetector().predict(test_matrix)

    def test_oneclass_mode(self, train_matrix, test_matrix):
        detector = KMeansDetector(n_clusters=25, random_state=0)
        detector.fit(train_matrix)
        assert detector.labeler is None
        assert detector.predict(test_matrix).shape == (test_matrix.shape[0],)
