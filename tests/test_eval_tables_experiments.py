"""Tests for repro.eval.tables, repro.eval.experiments and repro.eval.sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.kmeans import KMeansDetector
from repro.baselines.pca_subspace import PcaSubspaceDetector
from repro.core.config import GhsomConfig, SomTrainingConfig
from repro.data.synthetic import KddSyntheticGenerator
from repro.eval.experiments import DetectorResult, ExperimentRunner, evaluate_detector
from repro.eval.sweeps import dataset_size_sweep, tau_sensitivity_sweep, threshold_sweep
from repro.eval.tables import format_mapping, format_series, format_table
from repro.exceptions import ConfigurationError


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table([["a", 1, 0.5]], headers=["name", "count", "rate"])
        lines = text.splitlines()
        assert "name" in lines[0]
        assert "0.5000" in lines[-1]

    def test_title_and_separator(self):
        text = format_table([[1]], headers=["x"], title="Table 1")
        assert text.splitlines()[0] == "Table 1"
        assert "=" in text.splitlines()[1]

    def test_none_rendered_as_dash(self):
        text = format_table([[None]], headers=["x"])
        assert "-" in text.splitlines()[-1]

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table([[1, 2]], headers=["x"])

    def test_float_format_respected(self):
        text = format_table([[0.123456]], headers=["x"], float_format=".2f")
        assert "0.12" in text
        assert "0.1235" not in text

    def test_format_mapping(self):
        text = format_mapping({"a": 1, "b": 2.5})
        assert "a" in text and "2.5000" in text

    def test_format_series(self):
        text = format_series([1, 2], {"y1": [0.1, 0.2], "y2": [0.3, 0.4]}, x_label="t")
        header = text.splitlines()[0]
        assert "t" in header and "y1" in header and "y2" in header
        assert len(text.splitlines()) == 4


class TestEvaluateDetector:
    def test_result_fields(self, train_matrix, train_categories, test_matrix, small_split):
        _, test = small_split
        detector = KMeansDetector(n_clusters=20, random_state=0)
        result = evaluate_detector(
            detector,
            train_matrix,
            train_categories,
            test_matrix,
            [str(category) for category in test.categories],
            with_confusion=True,
        )
        assert 0.0 <= result.metrics.detection_rate <= 1.0
        assert 0.0 <= result.roc_auc <= 1.0
        assert result.fit_seconds > 0.0
        assert result.confusion is not None
        matrix, labels = result.confusion
        assert matrix.sum() == test_matrix.shape[0]
        assert "normal" in labels

    def test_summary_row_matches_headers(self, train_matrix, train_categories, test_matrix, small_split):
        _, test = small_split
        detector = PcaSubspaceDetector()
        result = evaluate_detector(
            detector, train_matrix, train_categories, test_matrix,
            [str(category) for category in test.categories],
        )
        assert len(result.summary_row()) == len(DetectorResult.summary_headers())


class TestExperimentRunner:
    def test_prepare_is_cached(self):
        runner = ExperimentRunner(n_train=300, n_test=150, random_state=0)
        first = runner.prepare()
        second = runner.prepare()
        assert first is second
        assert first["X_train"].shape[0] == 300

    def test_run_multiple_detectors(self):
        runner = ExperimentRunner(n_train=400, n_test=200, random_state=1)
        results = runner.run(
            {
                "kmeans": KMeansDetector(n_clusters=15, random_state=0),
                "pca": PcaSubspaceDetector(),
            }
        )
        assert set(results) == {"kmeans", "pca"}
        for result in results.values():
            assert result.metrics.n_attacks + result.metrics.n_normal == 200

    def test_normal_only_training_mode(self):
        runner = ExperimentRunner(
            n_train=300, n_test=150, train_on_normal_only=True, random_state=2
        )
        prepared = runner.prepare()
        assert prepared["y_train"] is None
        assert not runner.train_dataset.is_attack.any()

    def test_unsupervised_mode_withholds_labels(self):
        runner = ExperimentRunner(n_train=300, n_test=150, supervised=False, random_state=2)
        assert runner.prepare()["y_train"] is None

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(n_train=5, n_test=100)

    def test_run_single(self):
        runner = ExperimentRunner(n_train=300, n_test=150, random_state=3)
        result = runner.run_single(KMeansDetector(n_clusters=10, random_state=0))
        assert isinstance(result, DetectorResult)


class TestThresholdSweep:
    def test_rates_move_monotonically_with_threshold(self, rng):
        scores = np.concatenate([rng.random(200), rng.random(100) + 1.0])
        truth = np.array([0] * 200 + [1] * 100)
        rows = threshold_sweep(scores, truth, n_points=15)
        detection = [row["detection_rate"] for row in rows]
        fpr = [row["false_positive_rate"] for row in rows]
        assert all(b <= a + 1e-12 for a, b in zip(detection, detection[1:], strict=False))
        assert all(b <= a + 1e-12 for a, b in zip(fpr, fpr[1:], strict=False))

    def test_explicit_thresholds(self):
        rows = threshold_sweep([0.1, 0.9], [0, 1], thresholds=[0.5])
        assert len(rows) == 1
        assert rows[0]["detection_rate"] == 1.0
        assert rows[0]["false_positive_rate"] == 0.0


class TestTauSweep:
    def test_sweep_rows_and_trends(self, train_matrix, train_categories, test_matrix, test_binary_truth):
        base = GhsomConfig(
            max_depth=2, max_map_size=25, max_growth_rounds=6,
            training=SomTrainingConfig(epochs=2), random_state=0,
        )
        rows = tau_sensitivity_sweep(
            train_matrix[:400],
            train_categories[:400],
            test_matrix[:200],
            test_binary_truth[:200],
            tau1_values=(0.8, 0.2),
            tau2_values=(0.3,),
            base_config=base,
        )
        assert len(rows) == 2
        by_tau1 = {row["tau1"]: row for row in rows}
        assert by_tau1[0.2]["n_units"] >= by_tau1[0.8]["n_units"]

    def test_empty_grid_rejected(self, train_matrix, train_categories, test_matrix, test_binary_truth):
        with pytest.raises(ConfigurationError):
            tau_sensitivity_sweep(
                train_matrix, train_categories, test_matrix, test_binary_truth, tau1_values=()
            )


class TestDatasetSizeSweep:
    def test_rows_per_size(self):
        rows = dataset_size_sweep(
            lambda: KMeansDetector(n_clusters=10, random_state=0),
            sizes=[200, 400],
            generator_factory=lambda: KddSyntheticGenerator(random_state=5),
            n_test=100,
        )
        assert [row["n_train"] for row in rows] == [200, 400]
        for row in rows:
            assert row["fit_seconds"] > 0.0

    def test_too_small_size_rejected(self):
        with pytest.raises(ConfigurationError):
            dataset_size_sweep(
                lambda: KMeansDetector(n_clusters=5, random_state=0),
                sizes=[5],
                generator_factory=lambda: KddSyntheticGenerator(random_state=5),
            )
