"""Tests for repro.core.compiled — the flat-array GHSOM inference engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Ghsom, GhsomConfig, GhsomDetector, SomTrainingConfig
from repro.core.compiled import compile_ghsom
from repro.core.detector import combine_label_and_distance_scores
from repro.core.labeling import UNLABELED
from repro.core.serialization import detector_from_dict, detector_to_dict
from repro.exceptions import DataValidationError, NotFittedError


@pytest.fixture(scope="module")
def fitted_model(blob_data):
    config = GhsomConfig(
        tau1=0.4,
        tau2=0.05,
        max_depth=3,
        max_map_size=25,
        max_growth_rounds=8,
        min_samples_for_expansion=20,
        training=SomTrainingConfig(epochs=3),
        random_state=5,
    )
    return Ghsom(config).fit(blob_data)


@pytest.fixture(scope="module")
def query_data(blob_data):
    rng = np.random.default_rng(99)
    return np.clip(blob_data + rng.normal(0.0, 0.05, blob_data.shape), 0.0, 1.0)


class TestCompileStructure:
    def test_compile_is_cached_per_fit(self, fitted_model):
        assert fitted_model.compile() is fitted_model.compile()

    def test_snapshots_compare_by_identity_and_hash(self, fitted_model):
        compiled = fitted_model.compile()
        other = compile_ghsom(fitted_model)
        assert compiled == compiled
        assert compiled != other  # identity semantics, no ndarray ambiguity
        assert len({compiled, other}) == 2  # hashable

    def test_refit_invalidates_cache(self, blob_data):
        config = GhsomConfig(max_depth=1, training=SomTrainingConfig(epochs=2), random_state=0)
        model = Ghsom(config).fit(blob_data)
        first = model.compile()
        model.fit(blob_data)
        assert model.compile() is not first

    def test_unfitted_model_cannot_compile(self):
        with pytest.raises(NotFittedError):
            Ghsom().compile()
        with pytest.raises(NotFittedError):
            compile_ghsom(Ghsom())

    def test_codebook_stacks_every_layer(self, fitted_model):
        compiled = fitted_model.compile()
        assert compiled.n_nodes == fitted_model.n_maps
        assert compiled.n_units == fitted_model.n_units
        assert compiled.codebook.shape == (fitted_model.n_units, fitted_model.n_features)
        for index, node in enumerate(fitted_model.iter_nodes()):
            start = compiled.node_offsets[index]
            stop = compiled.node_offsets[index + 1]
            np.testing.assert_array_equal(compiled.codebook[start:stop], node.layer.codebook)
            assert compiled.node_ids[index] == node.node_id

    def test_units_partition_into_children_and_leaves(self, fitted_model):
        compiled = fitted_model.compile()
        is_child = compiled.child_of_unit >= 0
        is_leaf = compiled.leaf_of_unit >= 0
        assert np.all(is_child ^ is_leaf)
        assert int(is_leaf.sum()) == fitted_model.n_leaf_units == compiled.n_leaves

    def test_leaf_keys_match_tree_leaves(self, fitted_model):
        compiled = fitted_model.compile()
        expected = {
            (node.node_id, unit)
            for node in fitted_model.iter_nodes()
            for unit in range(node.n_units)
            if unit not in node.children
        }
        assert set(compiled.leaf_keys) == expected
        assert len(set(compiled.leaf_keys)) == len(compiled.leaf_keys)

    def test_leaf_index_round_trip(self, fitted_model):
        compiled = fitted_model.compile()
        for row, key in enumerate(compiled.leaf_keys):
            assert compiled.leaf_index_of(key) == row
        with pytest.raises(KeyError):
            compiled.leaf_index_of(("no-such-node", 0))

    def test_leaf_depths_match_node_depths(self, fitted_model):
        compiled = fitted_model.compile()
        for row in range(compiled.n_leaves):
            node_id = compiled.leaf_keys[row][0]
            assert compiled.leaf_depth[row] == fitted_model.get_node(node_id).depth
        assert compiled.max_depth == fitted_model.depth

    def test_leaf_lookup_builds_aligned_arrays(self, fitted_model):
        compiled = fitted_model.compile()
        units = compiled.leaf_lookup(lambda key: key[1], dtype=int)
        np.testing.assert_array_equal(units, compiled.leaf_unit)

    def test_describe_summary(self, fitted_model):
        summary = fitted_model.compile().describe()
        assert summary["n_nodes"] == fitted_model.n_maps
        assert summary["max_depth"] == fitted_model.depth
        assert summary["metric"] == "euclidean"


class TestAssignEquivalence:
    def test_assign_arrays_matches_legacy(self, fitted_model, query_data):
        compiled = fitted_model.compile()
        leaf_index, distances = compiled.assign_arrays(query_data)
        legacy = fitted_model.assign_legacy(query_data)
        assert len(legacy) == leaf_index.shape[0] == query_data.shape[0]
        assert [compiled.leaf_keys[row] for row in leaf_index] == [
            assignment.leaf_key for assignment in legacy
        ]
        np.testing.assert_array_equal(
            distances, np.array([assignment.distance for assignment in legacy])
        )

    def test_assign_builds_identical_dataclasses(self, fitted_model, query_data):
        fast = fitted_model.assign(query_data)
        legacy = fitted_model.assign_legacy(query_data)
        assert fast == legacy

    def test_transform_and_leaf_keys_fast_paths(self, fitted_model, query_data):
        legacy = fitted_model.assign_legacy(query_data)
        np.testing.assert_array_equal(
            fitted_model.transform(query_data),
            np.array([assignment.distance for assignment in legacy]),
        )
        assert fitted_model.leaf_keys(query_data) == [
            assignment.leaf_key for assignment in legacy
        ]

    def test_single_sample(self, fitted_model, query_data):
        leaf_index, distances = fitted_model.assign_arrays(query_data[:1])
        assert leaf_index.shape == (1,)
        assert distances.shape == (1,)

    def test_feature_mismatch_rejected(self, fitted_model):
        with pytest.raises(DataValidationError):
            fitted_model.assign_arrays(np.zeros((3, fitted_model.n_features + 1)))

    def test_compiled_transform_shortcut(self, fitted_model, query_data):
        compiled = fitted_model.compile()
        np.testing.assert_array_equal(
            compiled.transform(query_data), fitted_model.transform(query_data)
        )


def _legacy_score_samples(detector: GhsomDetector, X: np.ndarray) -> np.ndarray:
    """The pre-compilation scoring path, re-implemented as the test oracle."""
    assignments = detector.model.assign_legacy(X)
    distances = [assignment.distance for assignment in assignments]
    leaf_keys = [assignment.leaf_key for assignment in assignments]
    ratios = detector.threshold_.normalize(distances, leaf_keys)
    if detector.labeler is None:
        return np.asarray(ratios, dtype=float)
    scores = np.asarray(ratios, dtype=float).copy()
    for index, key in enumerate(leaf_keys):
        info = detector.labeler.info_of(key)
        if info.label not in ("normal", UNLABELED):
            scores[index] = 1.0 + info.purity + 0.01 * min(ratios[index], 10.0)
    return scores


def _legacy_predict_category(detector: GhsomDetector, X: np.ndarray) -> list:
    """The pre-compilation per-sample category loop, as the test oracle."""
    assignments = detector.model.assign_legacy(X)
    leaf_keys = [assignment.leaf_key for assignment in assignments]
    distances = [assignment.distance for assignment in assignments]
    ratios = detector.threshold_.normalize(distances, leaf_keys)
    categories = []
    for key, ratio in zip(leaf_keys, ratios, strict=True):
        label = detector.labeler.label_of(key)
        if label == UNLABELED:
            categories.append("unknown" if ratio > 1.0 else "normal")
        elif label == "normal" and ratio > 1.0:
            categories.append("unknown")
        else:
            categories.append(label)
    return categories


class TestDetectorEquivalence:
    @pytest.fixture(scope="class")
    def labeled_detector(self, fast_config, train_matrix, train_categories):
        return GhsomDetector(fast_config, random_state=0).fit(train_matrix, train_categories)

    @pytest.fixture(scope="class")
    def unlabeled_detector(self, fast_config, train_matrix):
        return GhsomDetector(fast_config, random_state=0).fit(train_matrix)

    def test_labeled_scores_identical(self, labeled_detector, test_matrix):
        np.testing.assert_array_equal(
            labeled_detector.score_samples(test_matrix),
            _legacy_score_samples(labeled_detector, test_matrix),
        )

    def test_unlabeled_scores_identical(self, unlabeled_detector, test_matrix):
        np.testing.assert_array_equal(
            unlabeled_detector.score_samples(test_matrix),
            _legacy_score_samples(unlabeled_detector, test_matrix),
        )

    def test_predictions_identical(self, labeled_detector, test_matrix):
        np.testing.assert_array_equal(
            labeled_detector.predict(test_matrix),
            (_legacy_score_samples(labeled_detector, test_matrix) > 1.0).astype(int),
        )

    def test_categories_identical(self, labeled_detector, test_matrix):
        fast = labeled_detector.predict_category(test_matrix)
        assert fast == _legacy_predict_category(labeled_detector, test_matrix)
        assert all(isinstance(category, str) for category in fast)

    def test_global_threshold_strategy_identical(self, fast_config, train_matrix, test_matrix):
        detector = GhsomDetector(
            fast_config, threshold_strategy="global", random_state=0
        ).fit(train_matrix)
        np.testing.assert_array_equal(
            detector.score_samples(test_matrix), _legacy_score_samples(detector, test_matrix)
        )

    def test_serialization_round_trip_scores_identical(self, labeled_detector, test_matrix):
        restored = detector_from_dict(detector_to_dict(labeled_detector))
        np.testing.assert_array_equal(
            restored.score_samples(test_matrix), labeled_detector.score_samples(test_matrix)
        )
        assert restored.predict_category(test_matrix) == labeled_detector.predict_category(
            test_matrix
        )

    def test_swapping_threshold_strategy_takes_effect(self, fast_config, train_matrix, test_matrix):
        """Externally replacing ``threshold_`` must invalidate the leaf tables."""
        from repro.core.thresholds import GlobalThreshold

        detector = GhsomDetector(fast_config, random_state=0).fit(train_matrix)
        detector.score_samples(test_matrix)  # tables cached
        replacement = GlobalThreshold(percentile=50.0).fit(
            detector.model.transform(train_matrix)
        )
        detector.threshold_ = replacement
        batch = train_matrix[:7]
        expected = detector.model.transform(batch) / replacement.threshold
        np.testing.assert_array_equal(detector.score_samples(batch), expected)

    def test_in_place_threshold_refit_takes_effect(self, fast_config, train_matrix):
        """Refitting the *same* strategy object must also invalidate the tables."""
        detector = GhsomDetector(
            fast_config, threshold_strategy="global", random_state=0
        ).fit(train_matrix)
        batch = train_matrix[:9]
        detector.score_samples(batch)  # tables cached
        distances = detector.model.transform(train_matrix)
        detector.threshold_.percentile = 50.0
        detector.threshold_.fit(distances)  # in-place recalibration
        expected = detector.model.transform(batch) / detector.threshold_.threshold
        np.testing.assert_array_equal(detector.score_samples(batch), expected)

    def test_refit_rebuilds_leaf_tables(self, fast_config, train_matrix, train_categories):
        detector = GhsomDetector(fast_config, random_state=0).fit(train_matrix)
        first_tables = detector._leaf_tables()
        detector.fit(train_matrix, train_categories)
        second_tables = detector._leaf_tables()
        assert second_tables is not first_tables
        assert second_tables.labels is not None


class TestCombineLabelAndDistanceScores:
    def _reference(self, ratios, leaf_keys, labeler):
        ratios = np.asarray(ratios, dtype=float)
        scores = ratios.copy()
        for index, key in enumerate(leaf_keys):
            info = labeler.info_of(key)
            if info.label not in ("normal", UNLABELED):
                scores[index] = 1.0 + info.purity + 0.01 * min(ratios[index], 10.0)
        return scores

    def test_vectorized_matches_reference(self, fast_config, train_matrix, train_categories):
        detector = GhsomDetector(fast_config, random_state=0).fit(train_matrix, train_categories)
        leaf_keys = detector.model.leaf_keys(train_matrix)
        rng = np.random.default_rng(0)
        ratios = rng.uniform(0.0, 12.0, len(leaf_keys))
        np.testing.assert_array_equal(
            combine_label_and_distance_scores(ratios, leaf_keys, detector.labeler),
            self._reference(ratios, leaf_keys, detector.labeler),
        )

    def test_no_labeler_returns_ratios(self):
        ratios = np.array([0.5, 2.0])
        np.testing.assert_array_equal(
            combine_label_and_distance_scores(ratios, [("root", 0), ("root", 1)], None), ratios
        )

    def test_empty_batch(self, fast_config, train_matrix, train_categories):
        detector = GhsomDetector(fast_config, random_state=0).fit(train_matrix, train_categories)
        result = combine_label_and_distance_scores(np.zeros(0), [], detector.labeler)
        assert result.shape == (0,)


class TestFrontierGroupingRegression:
    """The argsort-based frontier grouping is a pure execution-plan change.

    The previous grouping (``np.unique`` over the frontier's nodes + one
    boolean-mask scan per node) and the current single-``np.lexsort`` run
    detection must produce byte-identical outputs: both visit nodes in
    ascending order with ascending sample rows inside each group, so every
    per-node GEMM sees the same operand bytes.  This reference reimplements
    the old grouping verbatim and compares on a wide multi-level tree.
    """

    @staticmethod
    def _unique_mask_descent(matrix, entry_nodes, compiled):
        codebook = compiled.codebook
        node_offsets = compiled.node_offsets
        child_of_unit = compiled.child_of_unit
        leaf_of_unit = compiled.leaf_of_unit
        unit_norms = compiled.unit_norms
        n = matrix.shape[0]
        leaf_index = np.full(n, -1, dtype=np.intp)
        distances = np.zeros(n, dtype=codebook.dtype)
        sample_norms = np.einsum("ij,ij->i", matrix, matrix)
        pending = np.arange(n, dtype=np.intp)
        pending_node = np.ascontiguousarray(entry_nodes, dtype=np.intp)
        while pending.size:
            next_rows = []
            next_nodes = []
            for node in np.unique(pending_node):
                mask = pending_node == node
                rows = pending[mask]
                start = int(node_offsets[node])
                stop = int(node_offsets[node + 1])
                block = codebook[start:stop]
                whole_batch = rows.size == n
                sub = matrix if whole_batch else matrix[rows]
                d2 = sub @ block.T
                d2 *= -2.0
                d2 += (sample_norms if whole_batch else sample_norms[rows])[:, None]
                d2 += unit_norms[start:stop][None, :]
                np.maximum(d2, 0.0, out=d2)
                units = np.argmin(d2, axis=1)
                global_units = start + units
                children = child_of_unit[global_units]
                at_leaf = children < 0
                if at_leaf.any():
                    leaf_rows = rows[at_leaf]
                    leaf_index[leaf_rows] = leaf_of_unit[global_units[at_leaf]]
                    best = d2[at_leaf].min(axis=1)
                    if compiled.metric == "euclidean":
                        best = np.sqrt(best)
                    distances[leaf_rows] = best
                descending = ~at_leaf
                if descending.any():
                    next_rows.append(rows[descending])
                    next_nodes.append(children[descending])
            if next_rows:
                pending = np.concatenate(next_rows)
                pending_node = np.concatenate(next_nodes).astype(np.intp, copy=False)
            else:
                pending = np.empty(0, dtype=np.intp)
                pending_node = pending
        return leaf_index, distances

    def test_byte_identical_on_wide_tree(self, train_matrix, train_categories, test_matrix):
        # A wide config: large maps keep many sibling nodes live on every
        # frontier level, which is exactly where the grouping strategies
        # could diverge.
        config = GhsomConfig(
            tau1=0.3,
            tau2=0.05,
            max_depth=3,
            max_map_size=64,
            max_growth_rounds=10,
            min_samples_for_expansion=20,
            training=SomTrainingConfig(epochs=3),
            random_state=0,
        )
        detector = GhsomDetector(config, random_state=0).fit(train_matrix, train_categories)
        compiled = detector.model.compile()
        assert compiled.n_nodes > 8, "fixture tree is not wide enough to exercise grouping"
        matrix = np.ascontiguousarray(test_matrix, dtype=compiled.codebook.dtype)
        entries = np.zeros(matrix.shape[0], dtype=np.intp)
        expected = self._unique_mask_descent(matrix, entries, compiled)
        actual = compiled.assign_arrays(test_matrix)
        np.testing.assert_array_equal(actual[0], expected[0])
        np.testing.assert_array_equal(actual[1], expected[1].astype(np.float64))
        assert actual[1].tobytes() == expected[1].astype(np.float64).tobytes()
