"""Tests for ``repro-lint``: every rule fires on its bad fixture, stays
silent on the good one, honours suppressions, and the real tree is clean."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import RULES, lint_paths, lint_source, rules_by_code
from repro.analysis.engine import iter_python_files, suppressed_codes_by_line

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"

#: Rule code → the repo-relative path the fixture pretends to live at.  The
#: paths matter: rules are path scoped, so e.g. the RPL002 snippet must be
#: linted as a module *outside* the transport trust boundary.
FIXTURE_PATHS = {
    "RPL001": "src/repro/streaming/export.py",
    "RPL002": "src/repro/serving/remote.py",
    "RPL003": "src/repro/core/compiled.py",
    "RPL004": "src/repro/serving/transport.py",
    "RPL005": "src/repro/serving/config.py",
    "RPL006": "src/repro/serving/backends.py",
    "RPL007": "src/repro/serving/pool.py",
    "RPL008": "src/repro/serving/router.py",
}

ALL_CODES = sorted(FIXTURE_PATHS)


def _fixture(code: str, kind: str) -> str:
    return (FIXTURES / f"{code.lower()}_{kind}.py").read_text()


class TestRegistry:
    def test_eight_rules_with_unique_codes(self):
        codes = [rule.code for rule in RULES]
        assert len(codes) >= 8
        assert len(set(codes)) == len(codes)
        assert codes == sorted(codes)

    def test_every_rule_documents_its_invariant(self):
        for rule in RULES:
            assert rule.__doc__ and len(rule.__doc__.strip()) > 40, rule.code
            assert rule.summary()

    def test_rules_by_code_mapping(self):
        mapping = rules_by_code()
        assert set(mapping) == set(ALL_CODES)
        assert all(mapping[code].code == code for code in mapping)


class TestRuleFixtures:
    @pytest.mark.parametrize("code", ALL_CODES)
    def test_rule_fires_on_bad_fixture(self, code):
        findings = lint_source(_fixture(code, "bad"), FIXTURE_PATHS[code])
        fired = {finding.code for finding in findings}
        assert code in fired, f"{code} did not fire on its bad fixture"

    @pytest.mark.parametrize("code", ALL_CODES)
    def test_rule_silent_on_good_fixture(self, code):
        findings = lint_source(_fixture(code, "good"), FIXTURE_PATHS[code])
        assert findings == [], [finding.render() for finding in findings]

    @pytest.mark.parametrize("code", ALL_CODES)
    def test_rule_silent_outside_its_scope(self, code):
        # The same bad source linted as a file outside the repro package
        # produces nothing: every rule is path scoped.
        findings = lint_source(_fixture(code, "bad"), "scripts/tooling.py")
        assert [finding for finding in findings if finding.code == code] == []

    def test_findings_carry_location_and_message(self):
        findings = lint_source(_fixture("RPL002", "bad"), FIXTURE_PATHS["RPL002"])
        assert findings
        for finding in findings:
            assert finding.line >= 1
            assert finding.path.endswith("remote.py")
            assert "trust boundary" in finding.message
            assert finding.to_dict()["code"] == finding.code


class TestSuppressions:
    def test_same_line_suppression(self):
        source = (
            "import pickle\n"
            "def decode(body):\n"
            "    return pickle.loads(body)  # repro-lint: disable=RPL002 -- test\n"
        )
        assert lint_source(source, "src/repro/serving/remote.py") == []

    def test_previous_line_suppression(self):
        source = (
            "import pickle\n"
            "def decode(body):\n"
            "    # repro-lint: disable=RPL002 -- covered by an outer boundary\n"
            "    return pickle.loads(body)\n"
        )
        assert lint_source(source, "src/repro/serving/remote.py") == []

    def test_suppression_is_code_specific(self):
        source = (
            "import pickle\n"
            "def decode(body):\n"
            "    return pickle.loads(body)  # repro-lint: disable=RPL001\n"
        )
        findings = lint_source(source, "src/repro/serving/remote.py")
        assert [finding.code for finding in findings] == ["RPL002"]

    def test_multiple_codes_in_one_comment(self):
        mapping = suppressed_codes_by_line("x = 1  # repro-lint: disable=RPL001, RPL002\n")
        assert mapping == {1: {"RPL001", "RPL002"}}


class TestRepoSelfCheck:
    def test_repo_tree_is_clean(self):
        findings = lint_paths([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
        assert findings == [], "\n".join(finding.render() for finding in findings)

    def test_walker_skips_lint_fixtures(self):
        files = [str(path) for path in iter_python_files([str(REPO_ROOT / "tests")])]
        assert files, "walker found no test files"
        assert not any("fixtures/lint" in path for path in files)

    def test_every_rule_has_paired_fixtures(self):
        for code in ALL_CODES:
            assert (FIXTURES / f"{code.lower()}_bad.py").is_file()
            assert (FIXTURES / f"{code.lower()}_good.py").is_file()
