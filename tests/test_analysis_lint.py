"""Tests for ``repro-lint``: every rule fires on its bad fixture, stays
silent on the good one, honours suppressions, and the real tree is clean."""

from __future__ import annotations

from pathlib import Path

import pytest

import ast

from repro.analysis import (
    RULES,
    UNUSED_SUPPRESSION_CODE,
    lint_paths,
    lint_source,
    lint_sources,
    rules_by_code,
)
from repro.analysis.callgraph import Project
from repro.analysis.cfg import build_cfg, held_lock_states, node_await
from repro.analysis.engine import (
    Suppression,
    iter_python_files,
    scan_suppressions,
    suppressed_codes_by_line,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"

#: Rule code → the repo-relative path the fixture pretends to live at.  The
#: paths matter: rules are path scoped, so e.g. the RPL002 snippet must be
#: linted as a module *outside* the transport trust boundary.
FIXTURE_PATHS = {
    "RPL001": "src/repro/streaming/export.py",
    "RPL002": "src/repro/serving/remote.py",
    "RPL003": "src/repro/core/compiled.py",
    "RPL004": "src/repro/serving/transport.py",
    "RPL005": "src/repro/serving/config.py",
    "RPL006": "src/repro/serving/backends.py",
    "RPL007": "src/repro/serving/pool.py",
    "RPL008": "src/repro/serving/router.py",
    "RPL009": "src/repro/serving/gateway.py",
    "RPL010": "src/repro/serving/gateway.py",
    "RPL011": "src/repro/serving/remote.py",
    "RPL012": "src/repro/serving/gateway.py",
    "RPL013": "src/repro/serving/gateway.py",
    "RPL014": "src/repro/serving/backends.py",
}

ALL_CODES = sorted(FIXTURE_PATHS)


def _fixture(code: str, kind: str) -> str:
    return (FIXTURES / f"{code.lower()}_{kind}.py").read_text()


class TestRegistry:
    def test_fourteen_rules_with_unique_codes(self):
        codes = [rule.code for rule in RULES]
        assert len(codes) >= 14
        assert len(set(codes)) == len(codes)
        assert codes == sorted(codes)

    def test_concurrency_rules_are_project_scoped(self):
        mapping = rules_by_code()
        for code in ("RPL009", "RPL010", "RPL011", "RPL012", "RPL013", "RPL014"):
            assert mapping[code].requires_project, code
        for code in ("RPL001", "RPL002", "RPL004"):
            assert not mapping[code].requires_project, code

    def test_every_rule_documents_its_invariant(self):
        for rule in RULES:
            assert rule.__doc__ and len(rule.__doc__.strip()) > 40, rule.code
            assert rule.summary()

    def test_rules_by_code_mapping(self):
        mapping = rules_by_code()
        assert set(mapping) == set(ALL_CODES)
        assert all(mapping[code].code == code for code in mapping)


class TestRuleFixtures:
    @pytest.mark.parametrize("code", ALL_CODES)
    def test_rule_fires_on_bad_fixture(self, code):
        findings = lint_source(_fixture(code, "bad"), FIXTURE_PATHS[code])
        fired = {finding.code for finding in findings}
        assert code in fired, f"{code} did not fire on its bad fixture"

    @pytest.mark.parametrize("code", ALL_CODES)
    def test_rule_silent_on_good_fixture(self, code):
        findings = lint_source(_fixture(code, "good"), FIXTURE_PATHS[code])
        assert findings == [], [finding.render() for finding in findings]

    @pytest.mark.parametrize("code", ALL_CODES)
    def test_rule_silent_outside_its_scope(self, code):
        # The same bad source linted as a file outside the repro package
        # produces nothing: every rule is path scoped.
        findings = lint_source(_fixture(code, "bad"), "scripts/tooling.py")
        assert [finding for finding in findings if finding.code == code] == []

    def test_findings_carry_location_and_message(self):
        findings = lint_source(_fixture("RPL002", "bad"), FIXTURE_PATHS["RPL002"])
        assert findings
        for finding in findings:
            assert finding.line >= 1
            assert finding.path.endswith("remote.py")
            assert "trust boundary" in finding.message
            assert finding.to_dict()["code"] == finding.code


class TestSuppressions:
    def test_same_line_suppression(self):
        source = (
            "import pickle\n"
            "def decode(body):\n"
            "    return pickle.loads(body)  # repro-lint: disable=RPL002 -- test\n"
        )
        assert lint_source(source, "src/repro/serving/remote.py") == []

    def test_previous_line_suppression(self):
        source = (
            "import pickle\n"
            "def decode(body):\n"
            "    # repro-lint: disable=RPL002 -- covered by an outer boundary\n"
            "    return pickle.loads(body)\n"
        )
        assert lint_source(source, "src/repro/serving/remote.py") == []

    def test_suppression_is_code_specific(self):
        source = (
            "import pickle\n"
            "def decode(body):\n"
            "    return pickle.loads(body)  # repro-lint: disable=RPL001\n"
        )
        findings = lint_source(source, "src/repro/serving/remote.py")
        assert [finding.code for finding in findings] == ["RPL002"]

    def test_multiple_codes_in_one_comment(self):
        mapping = suppressed_codes_by_line("x = 1  # repro-lint: disable=RPL001, RPL002\n")
        assert mapping == {1: {"RPL001", "RPL002"}}


class TestRepoSelfCheck:
    def test_repo_tree_is_clean(self):
        # Stale-suppression reporting is on: the tree must carry zero
        # unsuppressed findings AND zero suppressions that silence nothing.
        findings = lint_paths(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")],
            report_unused_suppressions=True,
        )
        assert findings == [], "\n".join(finding.render() for finding in findings)

    def test_walker_skips_lint_fixtures(self):
        files = [str(path) for path in iter_python_files([str(REPO_ROOT / "tests")])]
        assert files, "walker found no test files"
        assert not any("fixtures/lint" in path for path in files)

    def test_every_rule_has_paired_fixtures(self):
        for code in ALL_CODES:
            assert (FIXTURES / f"{code.lower()}_bad.py").is_file()
            assert (FIXTURES / f"{code.lower()}_good.py").is_file()

    def test_serving_stack_satisfies_concurrency_invariants(self):
        # Regression guard for the RPL009-RPL014 family over the *real*
        # serving stack: the thread+asyncio hybrid must keep satisfying the
        # concurrency invariants without a single new suppression.
        serving = REPO_ROOT / "src" / "repro" / "serving"
        concurrency = [rule for rule in RULES if rule.requires_project]
        findings = lint_paths([str(serving)], rules=concurrency)
        assert findings == [], "\n".join(finding.render() for finding in findings)


class TestFlowSensitivity:
    """The concurrency family sees through call chains — the per-node
    rules of PR 8 provably cannot (nothing at the call site mentions a
    blocking primitive)."""

    def test_blocking_call_through_helper_is_flagged(self):
        source = (
            "import time\n"
            "\n"
            "def helper():\n"
            "    time.sleep(1.0)\n"
            "\n"
            "async def handler():\n"
            "    helper()\n"
        )
        findings = lint_source(source, "src/repro/serving/gateway.py")
        assert [finding.code for finding in findings] == ["RPL009"]
        finding = findings[0]
        # Flagged at the helper() *call site* inside the coroutine (line 7),
        # which lexically contains no blocking primitive at all.
        assert finding.line == 7
        assert "helper()" in finding.message
        assert "time.sleep" in finding.message

    def test_blocking_call_through_cross_module_helper_is_flagged(self):
        transport = "import time\n\ndef slow_frame_read(sock):\n    time.sleep(1.0)\n"
        gateway = "async def handler(sock):\n    slow_frame_read(sock)\n"
        findings = lint_sources(
            {
                "src/repro/serving/transport.py": transport,
                "src/repro/serving/gateway.py": gateway,
            }
        )
        assert [finding.code for finding in findings] == ["RPL009"]
        assert findings[0].path == "src/repro/serving/gateway.py"

    def test_ambiguous_callee_name_produces_no_edge(self):
        # Two same-named sync functions: the call cannot be resolved, so the
        # conservative call graph must NOT invent a blocking edge.
        source = (
            "import time\n"
            "\n"
            "class A:\n"
            "    def work(self): ...\n"
            "\n"
            "def work():\n"
            "    time.sleep(1.0)\n"
            "\n"
            "async def handler(thing):\n"
            "    thing.work()\n"
        )
        findings = lint_source(source, "src/repro/serving/gateway.py")
        assert findings == []

    def test_await_after_lock_release_is_not_flagged(self):
        source = (
            "import asyncio\n"
            "import threading\n"
            "\n"
            "class G:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "\n"
            "    async def run(self):\n"
            "        self._lock.acquire()\n"
            "        self._lock.release()\n"
            "        await asyncio.sleep(0)\n"
        )
        assert lint_source(source, "src/repro/serving/gateway.py") == []

    def test_await_between_acquire_and_release_is_flagged(self):
        source = (
            "import asyncio\n"
            "import threading\n"
            "\n"
            "class G:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "\n"
            "    async def run(self):\n"
            "        self._lock.acquire()\n"
            "        await asyncio.sleep(0)\n"
            "        self._lock.release()\n"
        )
        findings = lint_source(source, "src/repro/serving/gateway.py")
        assert [finding.code for finding in findings] == ["RPL010"]
        assert findings[0].line == 10

    def test_lock_cycle_through_a_call_is_flagged(self):
        # One half of the inversion hides behind a method call: ``report``
        # holds stats and *calls* a helper that takes slots.
        source = (
            "import threading\n"
            "\n"
            "class T:\n"
            "    def __init__(self):\n"
            "        self._slots_lock = threading.Lock()\n"
            "        self._stats_lock = threading.Lock()\n"
            "\n"
            "    def assign(self):\n"
            "        with self._slots_lock:\n"
            "            with self._stats_lock:\n"
            "                pass\n"
            "\n"
            "    def _count(self):\n"
            "        with self._slots_lock:\n"
            "            return 0\n"
            "\n"
            "    def report(self):\n"
            "        with self._stats_lock:\n"
            "            return self._count()\n"
        )
        findings = lint_source(source, "src/repro/serving/remote.py")
        assert "RPL011" in {finding.code for finding in findings}


class TestStaleSuppressions:
    def test_scan_resolves_inline_and_previous_line(self):
        source = (
            "x = 1  # repro-lint: disable=RPL001 -- inline\n"
            "# repro-lint: disable=RPL002 -- above\n"
            "y = 2\n"
        )
        assert scan_suppressions(source) == [
            Suppression(code="RPL001", target_line=1, comment_line=1),
            Suppression(code="RPL002", target_line=3, comment_line=2),
        ]

    def test_docstring_mentioning_syntax_is_not_a_suppression(self):
        # The engine's own docstring documents the syntax; a line-regex
        # scanner would turn that prose into a phantom suppression.
        source = (
            '"""Docs.\n'
            "\n"
            "    # repro-lint: disable=RPL003 -- example from the docs\n"
            '"""\n'
            "x = 1\n"
        )
        assert scan_suppressions(source) == []

    def test_unused_suppression_reported_at_comment_line(self):
        source = (
            "import json\n"
            "def publish(path, payload):\n"
            "    # repro-lint: disable=RPL001 -- stale: write is atomic now\n"
            "    return path\n"
        )
        findings = lint_source(
            source,
            "src/repro/streaming/export.py",
            report_unused_suppressions=True,
        )
        assert [finding.code for finding in findings] == [UNUSED_SUPPRESSION_CODE]
        assert findings[0].line == 3
        assert "RPL001" in findings[0].message

    def test_used_suppression_is_not_reported(self):
        source = (
            "import pickle\n"
            "def decode(body):\n"
            "    return pickle.loads(body)  # repro-lint: disable=RPL002 -- test\n"
        )
        findings = lint_source(
            source,
            "src/repro/serving/remote.py",
            report_unused_suppressions=True,
        )
        assert findings == []

    def test_suppressions_for_unselected_rules_are_ignored(self):
        # Under --select RPL002 a (used) RPL003 suppression elsewhere must
        # not be reported stale: its rule simply did not run.
        source = (
            "x = 1  # repro-lint: disable=RPL003 -- hot-path contract\n"
        )
        rule = rules_by_code()["RPL002"]
        findings = lint_source(
            source,
            "src/repro/serving/remote.py",
            rules=[rule],
            report_unused_suppressions=True,
        )
        assert findings == []

    def test_default_lint_does_not_report_stale_suppressions(self):
        source = "x = 1  # repro-lint: disable=RPL001 -- stale\n"
        assert lint_source(source, "src/repro/streaming/export.py") == []


class TestControlFlowGraph:
    @staticmethod
    def _fn(source):
        module = ast.parse(source)
        fn = module.body[-1]
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        return fn

    def test_branches_rejoin(self):
        fn = self._fn(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        cfg = build_cfg(fn)
        returns = [n for n in cfg.nodes if isinstance(n.statement, ast.Return)]
        assert len(returns) == 1
        # Both branch arms flow into the return.
        assert len(returns[0].predecessors) == 2

    def test_loop_has_back_edge(self):
        fn = self._fn("def f(xs):\n    for x in xs:\n        use(x)\n")
        cfg = build_cfg(fn)
        header = next(n for n in cfg.nodes if isinstance(n.statement, ast.For))
        body = next(n for n in cfg.nodes if isinstance(n.statement, ast.Expr))
        assert header.index in body.successors

    def test_held_locks_flow_through_with_blocks(self):
        fn = self._fn(
            "async def f(self):\n"
            "    with self._lock:\n"
            "        await step_one()\n"
            "    await step_two()\n"
        )
        cfg = build_cfg(fn)

        def lock_of(expr):
            return "L" if "lock" in ast.unparse(expr) else None

        states = held_lock_states(cfg, lock_of)
        awaits = [n for n in cfg.nodes if node_await(n) is not None and n.kind == "stmt"]
        assert len(awaits) == 2
        inside, outside = awaits
        assert states[inside.index] == {"L"}
        assert states[outside.index] == set()

    def test_try_bodies_edge_into_handlers(self):
        fn = self._fn(
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except ValueError:\n"
            "        recover()\n"
        )
        cfg = build_cfg(fn)
        handler = next(
            n for n in cfg.nodes if isinstance(n.statement, ast.ExceptHandler)
        )
        assert handler.predecessors  # reachable from the try body


class TestCallGraph:
    @staticmethod
    def _project(**sources):
        return Project(
            {path.replace("__", "/"): ast.parse(text) for path, text in sources.items()}
        )

    def test_thread_target_context_propagates(self):
        project = self._project(
            mod=(
                "import threading\n"
                "class C:\n"
                "    def start(self):\n"
                "        threading.Thread(target=self._loop).start()\n"
                "    def _loop(self):\n"
                "        self._step()\n"
                "    def _step(self):\n"
                "        pass\n"
            )
        )
        chains = project.contexts()["thread"]
        assert any(q.endswith("C._loop") for q in chains)
        step = next(q for q in chains if q.endswith("C._step"))
        assert chains[step] == ("C._loop", "C._step")

    def test_async_callees_stop_propagation(self):
        project = self._project(
            mod=(
                "async def outer():\n"
                "    helper()\n"
                "def helper():\n"
                "    pass\n"
                "async def separate():\n"
                "    pass\n"
            )
        )
        chains = project.contexts()["coroutine"]
        assert any(q.endswith("::helper") for q in chains)
        # An async def is its own seed (chain length 1), never entered
        # through a sync edge.
        separate = next(q for q in chains if q.endswith("::separate"))
        assert chains[separate] == ("separate",)

    def test_blocking_chain_follows_helpers(self):
        project = self._project(
            mod=(
                "import time\n"
                "def a():\n"
                "    b()\n"
                "def b():\n"
                "    time.sleep(1)\n"
            )
        )
        module = project.modules["mod"]
        fn_a = module.functions["a"]
        chain = project.blocking_chain(fn_a)
        assert chain == (("a", "b"), "time.sleep()")

    def test_recursive_helpers_terminate(self):
        project = self._project(
            mod=("def a():\n    b()\ndef b():\n    a()\n")
        )
        module = project.modules["mod"]
        assert project.blocking_chain(module.functions["a"]) is None

    def test_awaited_calls_are_not_blocking(self):
        project = self._project(
            mod=(
                "async def f(conn):\n"
                "    await conn.recv(1)\n"
                "    conn.recv(1)\n"
            )
        )
        module = project.modules["mod"]
        fn = module.all_functions[0]
        sites = project.blocking_calls(fn)
        assert len(sites) == 1
        assert sites[0][0].lineno == 3
