"""Tests for repro.core.detector (GhsomDetector)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detector import GhsomDetector, combine_label_and_distance_scores
from repro.core.labeling import UnitLabeler
from repro.eval.metrics import binary_metrics
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError


@pytest.fixture(scope="module")
def supervised_detector(fast_config, train_matrix, train_categories):
    detector = GhsomDetector(fast_config, random_state=0)
    detector.fit(train_matrix, train_categories)
    return detector


@pytest.fixture(scope="module")
def oneclass_generator():
    """A dedicated generator so the one-class tests do not depend on test ordering."""
    from repro.data.synthetic import KddSyntheticGenerator

    return KddSyntheticGenerator(random_state=21)


@pytest.fixture(scope="module")
def oneclass_detector(oneclass_generator):
    from repro.core.config import GhsomConfig, SomTrainingConfig
    from repro.data.preprocess import PreprocessingPipeline

    config = GhsomConfig(
        tau1=0.3,
        tau2=0.08,
        max_depth=2,
        max_map_size=64,
        max_growth_rounds=20,
        min_samples_for_expansion=20,
        training=SomTrainingConfig(epochs=5),
        random_state=0,
    )
    normal_train = oneclass_generator.generate_normal(800)
    pipeline = PreprocessingPipeline().fit(normal_train)
    detector = GhsomDetector(config, random_state=0)
    detector.fit(pipeline.transform(normal_train))
    return detector, pipeline


class TestFitValidation:
    def test_unfitted_detector_raises(self, train_matrix):
        detector = GhsomDetector(random_state=0)
        with pytest.raises(NotFittedError):
            detector.predict(train_matrix)
        with pytest.raises(NotFittedError):
            detector.score_samples(train_matrix)

    def test_label_length_mismatch_rejected(self, fast_config, train_matrix):
        detector = GhsomDetector(fast_config, random_state=0)
        with pytest.raises(DataValidationError):
            detector.fit(train_matrix, ["normal"] * 3)

    def test_is_labeled_flag(self, supervised_detector, oneclass_detector):
        assert supervised_detector.is_labeled
        assert not oneclass_detector[0].is_labeled

    def test_leaf_label_distribution_requires_labels(self, oneclass_detector):
        detector, _ = oneclass_detector
        with pytest.raises(ConfigurationError):
            detector.leaf_label_distribution()

    def test_leaf_label_distribution_supervised(self, supervised_detector):
        distribution = supervised_detector.leaf_label_distribution()
        assert "normal" in distribution
        assert sum(distribution.values()) > 0


class TestSupervisedDetection:
    def test_predictions_are_binary(self, supervised_detector, test_matrix):
        predictions = supervised_detector.predict(test_matrix)
        assert set(np.unique(predictions)).issubset({0, 1})

    def test_detection_quality(self, supervised_detector, test_matrix, test_binary_truth):
        """The GHSOM detector must reach a high DR at a low FPR on synthetic KDD traffic."""
        metrics = binary_metrics(test_binary_truth, supervised_detector.predict(test_matrix))
        assert metrics.detection_rate > 0.85
        assert metrics.false_positive_rate < 0.15

    def test_scores_and_predictions_consistent(self, supervised_detector, test_matrix):
        scores = supervised_detector.score_samples(test_matrix)
        predictions = supervised_detector.predict(test_matrix)
        np.testing.assert_array_equal(predictions, (scores > 1.0).astype(int))

    def test_predict_category_values(self, supervised_detector, test_matrix):
        categories = supervised_detector.predict_category(test_matrix)
        allowed = {"normal", "dos", "probe", "r2l", "u2r", "unknown"}
        assert set(categories).issubset(allowed)
        assert len(categories) == test_matrix.shape[0]

    def test_dos_records_mostly_identified_as_dos(
        self, supervised_detector, test_matrix, small_split
    ):
        _, test = small_split
        categories = np.array(supervised_detector.predict_category(test_matrix), dtype=object)
        dos_mask = test.categories == "dos"
        if dos_mask.sum() >= 10:
            dos_accuracy = np.mean(categories[dos_mask] == "dos")
            assert dos_accuracy > 0.7

    def test_topology_summary_available(self, supervised_detector):
        summary = supervised_detector.topology_summary()
        assert summary["n_maps"] >= 1
        assert summary["n_units"] >= 4


class TestOneClassDetection:
    def test_normal_training_data_mostly_below_threshold(self, oneclass_detector, oneclass_generator):
        detector, pipeline = oneclass_detector
        fresh_normal = oneclass_generator.generate_normal(300)
        predictions = detector.predict(pipeline.transform(fresh_normal))
        assert predictions.mean() < 0.15  # low false-positive rate on fresh normal traffic

    def test_dos_traffic_flagged(self, oneclass_detector, oneclass_generator):
        detector, pipeline = oneclass_detector
        dos = oneclass_generator.generate_class("smurf", 200).concat(oneclass_generator.generate_class("neptune", 200))
        predictions = detector.predict(pipeline.transform(dos))
        assert predictions.mean() > 0.9

    def test_probe_traffic_flagged(self, oneclass_detector, oneclass_generator):
        detector, pipeline = oneclass_detector
        probe = oneclass_generator.generate_class("portsweep", 200)
        predictions = detector.predict(pipeline.transform(probe))
        assert predictions.mean() > 0.7

    def test_scores_increase_with_anomalousness(self, oneclass_detector, oneclass_generator):
        detector, pipeline = oneclass_detector
        normal_scores = detector.score_samples(
            pipeline.transform(oneclass_generator.generate_normal(200))
        )
        attack_scores = detector.score_samples(
            pipeline.transform(oneclass_generator.generate_class("smurf", 200))
        )
        assert np.median(attack_scores) > np.median(normal_scores)

    def test_predict_category_without_labels(self, oneclass_detector, oneclass_generator):
        detector, pipeline = oneclass_detector
        categories = detector.predict_category(
            pipeline.transform(oneclass_generator.generate_normal(50))
        )
        assert set(categories).issubset({"normal", "anomaly"})


class TestThresholdStrategies:
    @pytest.mark.parametrize("strategy", ["global", "per_unit"])
    def test_both_strategies_work(self, fast_config, train_matrix, train_categories, test_matrix, strategy):
        detector = GhsomDetector(
            fast_config, threshold_strategy=strategy, random_state=0
        )
        detector.fit(train_matrix, train_categories)
        predictions = detector.predict(test_matrix)
        assert predictions.shape == (test_matrix.shape[0],)

    def test_unknown_strategy_rejected(self, fast_config, train_matrix, train_categories):
        detector = GhsomDetector(
            fast_config, threshold_strategy="quantile_forest", random_state=0
        )
        with pytest.raises(ConfigurationError):
            detector.fit(train_matrix, train_categories)


class TestCombineScores:
    def test_no_labeler_passthrough(self):
        ratios = np.array([0.5, 2.0])
        np.testing.assert_array_equal(
            combine_label_and_distance_scores(ratios, [("root", 0), ("root", 1)], None), ratios
        )

    def test_attack_units_pushed_above_one(self):
        labeler = UnitLabeler().fit([("root", 0), ("root", 1)], ["dos", "normal"])
        scores = combine_label_and_distance_scores(
            np.array([0.1, 0.1]), [("root", 0), ("root", 1)], labeler
        )
        assert scores[0] > 1.0
        assert scores[1] == pytest.approx(0.1)

    def test_purer_attack_units_rank_higher(self):
        labeler = UnitLabeler().fit(
            [("root", 0)] * 4 + [("root", 1)] * 4,
            ["dos", "dos", "dos", "dos", "dos", "dos", "normal", "normal"],
        )
        scores = combine_label_and_distance_scores(
            np.array([0.1, 0.1]), [("root", 0), ("root", 1)], labeler
        )
        assert scores[0] > scores[1] > 1.0
