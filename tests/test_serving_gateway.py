"""Tests for the async detection gateway (repro.serving.gateway).

Two properties anchor the suite.  **Numerical**: the gateway adds zero
error — a request served alone is bit-for-bit the direct ``detect`` call,
and a coalesced batch is bit-for-bit ``detect`` on the concatenated rows.
**Protocol**: every admitted request gets exactly one reply, matched by id,
and every rejection (backpressure, deadline, malformed rows, drain) is an
explicit error frame — never a silent drop, never a misrouted or partial
result.  The fault-path tests drive the sharp edges: clients vanishing
mid-flight, oversized and malformed frames, expired deadlines, a full
pending queue, and drain-on-shutdown.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.core import GhsomConfig, GhsomDetector, SomTrainingConfig
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator
from repro.exceptions import ConfigurationError, ServingError
from repro.serving import DetectionGateway, GatewayClient, ShardWorkerServer
from repro.serving.transport import (
    FRAME_MAGIC,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    TransportError,
    WorkerConnection,
    client_handshake,
    recv_frame,
    send_frame,
)


# --------------------------------------------------------------------------- #
# fixtures
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def workload():
    generator = KddSyntheticGenerator(random_state=77)
    train = generator.generate(900)
    test = generator.generate(300)
    pipeline = PreprocessingPipeline()
    return {
        "X_train": pipeline.fit_transform(train),
        "X_test": pipeline.transform(test),
        "y_train": [str(category) for category in train.categories],
    }


@pytest.fixture(scope="module")
def fitted(workload):
    detector = GhsomDetector(
        GhsomConfig(
            tau1=0.3,
            tau2=0.05,
            max_depth=3,
            max_map_size=36,
            min_samples_for_expansion=25,
            training=SomTrainingConfig(epochs=3),
            random_state=13,
        ),
        random_state=13,
    )
    detector.fit(workload["X_train"], workload["y_train"])
    return detector


class _SlowDetector:
    """Transparent detector wrapper whose ``detect`` sleeps first.

    Used to hold a batch in flight deterministically so backpressure and
    drain paths can be driven without racing the (fast) real engine.
    """

    def __init__(self, inner, delay_s: float):
        self._inner = inner
        self._delay_s = delay_s
        self.n_detect_calls = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def detect(self, X):
        self.n_detect_calls += 1
        time.sleep(self._delay_s)
        return self._inner.detect(X)


def _assert_result_identical(result, reference, lo, hi):
    """Gateway result equals the [lo:hi) slice of a direct detect, bitwise."""
    assert result.scores.tobytes() == reference.scores[lo:hi].tobytes()
    np.testing.assert_array_equal(result.predictions, reference.predictions[lo:hi])
    assert list(result.categories) == list(reference.categories[lo:hi])
    if reference.leaf_index is not None:
        np.testing.assert_array_equal(result.leaf_index, reference.leaf_index[lo:hi])


# --------------------------------------------------------------------------- #
# byte identity
# --------------------------------------------------------------------------- #
class TestByteIdentity:
    def test_solo_requests_bit_identical_to_direct_detect(self, fitted, workload):
        X = workload["X_test"]
        with DetectionGateway(fitted, tick_ms=0.0).start() as gateway:
            with GatewayClient(gateway.address) as client:
                for lo, hi in [(0, 1), (10, 11), (20, 52), (100, 228)]:
                    reference = fitted.detect(X[lo:hi])
                    result = client.detect(X[lo:hi], timeout=30)
                    _assert_result_identical(result, reference, 0, hi - lo)

    def test_single_record_1d_request(self, fitted, workload):
        X = workload["X_test"]
        reference = fitted.detect(X[3:4])
        with DetectionGateway(fitted, tick_ms=0.0).start() as gateway:
            with GatewayClient(gateway.address) as client:
                result = client.detect(X[3], timeout=30)  # 1-D record
        assert len(result) == 1
        _assert_result_identical(result, reference, 0, 1)

    def test_coalesced_batch_bit_identical_to_concat_detect(self, fitted, workload):
        """Requests coalesced into one batch == detect() on the concat rows.

        A single connection preserves admission order, so with a generous
        tick the N submissions form one batch whose matrix is exactly the
        concatenation in submission order.
        """
        X = workload["X_test"]
        n_requests = 12
        with DetectionGateway(fitted, tick_ms=250.0).start() as gateway:
            with GatewayClient(gateway.address) as client:
                client.ping()  # connection fully established before timing starts
                futures = [
                    client.submit(X[i : i + 2]) for i in range(0, 2 * n_requests, 2)
                ]
                results = [future.result(timeout=30) for future in futures]
        assert all(result.batch_rows == 2 * n_requests for result in results), (
            "expected one coalesced batch, got batch sizes "
            f"{[result.batch_rows for result in results]}"
        )
        reference = fitted.detect(X[: 2 * n_requests])
        for index, result in enumerate(results):
            _assert_result_identical(result, reference, 2 * index, 2 * index + 2)
        assert gateway.stats["largest_batch_rows"] == 2 * n_requests

    def test_responses_never_misrouted(self, fitted, workload):
        """Concurrent distinct-size requests each get exactly their own rows."""
        X = workload["X_test"]
        sizes = [1, 2, 3, 5, 8, 13, 1, 4]
        offsets = np.cumsum([0] + sizes)
        with DetectionGateway(fitted, tick_ms=5.0).start() as gateway:
            clients = [GatewayClient(gateway.address) for _ in range(2)]
            try:
                futures = [
                    clients[i % 2].submit(X[offsets[i] : offsets[i] + size])
                    for i, size in enumerate(sizes)
                ]
                results = [future.result(timeout=30) for future in futures]
            finally:
                for client in clients:
                    client.close()
        for i, (size, result) in enumerate(zip(sizes, results)):
            assert len(result) == size
            reference = fitted.detect(X[offsets[i] : offsets[i] + size])
            # Identity check tolerant to batch-composition ULP wiggle: the
            # slice must be *this request's* rows, not a neighbour's.
            np.testing.assert_allclose(result.scores, reference.scores, rtol=1e-9)
            assert list(result.categories) == list(reference.categories)


# --------------------------------------------------------------------------- #
# protocol-level id round-trip
# --------------------------------------------------------------------------- #
class TestWireProtocol:
    def test_ids_round_trip_verbatim(self, fitted, workload):
        X = workload["X_test"]
        with DetectionGateway(fitted, tick_ms=0.0).start() as gateway:
            sock = socket.create_connection(gateway.address, timeout=10)
            try:
                info = client_handshake(sock)
                assert info["role"] == "gateway"
                assert "detect" in info["ops"] and "ping" in info["ops"]
                send_frame(sock, {"id": 7, "op": "detect", "rows": X[:1]})
                send_frame(sock, {"id": 9, "op": "detect", "rows": X[1:2]})
                replies = {}
                for _ in range(2):
                    frame = recv_frame(sock)
                    replies[frame["id"]] = frame
                assert set(replies) == {7, 9}
                assert all(frame["ok"] for frame in replies.values())
            finally:
                sock.close()

    def test_unknown_op_gets_error_reply_not_dead_stream(self, fitted):
        with DetectionGateway(fitted, tick_ms=0.0).start() as gateway:
            with WorkerConnection(gateway.address) as connection:
                with pytest.raises(ServingError, match="unknown operation"):
                    connection.call("run", timeout=10)
                # The stream survives the bad op: the next request works.
                assert connection.call("ping", timeout=10) == "pong"

    def test_protocol_mismatch_rejected(self, fitted):
        with DetectionGateway(fitted, tick_ms=0.0).start() as gateway:
            sock = socket.create_connection(gateway.address, timeout=10)
            try:
                with pytest.raises(TransportError, match="protocol mismatch"):
                    client_handshake(sock, protocol=PROTOCOL_VERSION + 1)
            finally:
                sock.close()

    def test_client_role_check_refuses_shard_worker(self, fitted, tmp_path):
        with ShardWorkerServer().start() as worker:
            with pytest.raises(ServingError, match="not 'gateway'"):
                GatewayClient(worker.address)

    def test_client_rejects_address_strings_too(self, fitted):
        with DetectionGateway(fitted, tick_ms=0.0).start() as gateway:
            host, port = gateway.address
            with GatewayClient(f"{host}:{port}") as client:
                assert client.ping()
                assert client.n_features == int(
                    client.info["n_features"]
                )


# --------------------------------------------------------------------------- #
# fault paths
# --------------------------------------------------------------------------- #
class TestFaultPaths:
    def test_client_disconnect_mid_flight_leaves_gateway_serving(
        self, fitted, workload
    ):
        X = workload["X_test"]
        slow = _SlowDetector(fitted, delay_s=0.3)
        with DetectionGateway(slow, tick_ms=0.0).start() as gateway:
            doomed = GatewayClient(gateway.address)
            doomed.submit(X[:4])  # will be in flight when the socket dies
            time.sleep(0.05)  # let the request reach the batcher
            doomed.close()
            # A healthy client gets real results while and after the dead
            # client's batch resolves into a closed socket.
            with GatewayClient(gateway.address) as client:
                result = client.detect(X[4:8], timeout=30)
                assert len(result) == 4
                assert client.ping()

    def test_oversized_frame_closes_connection_only(self, fitted, workload):
        X = workload["X_test"]
        with DetectionGateway(fitted, tick_ms=0.0).start() as gateway:
            sock = socket.create_connection(gateway.address, timeout=10)
            try:
                client_handshake(sock)
                # A prefix claiming a body over the frame limit: the server
                # must drop the connection, not try to buffer 3 GiB.
                sock.sendall(struct.pack("!4sI", FRAME_MAGIC, MAX_FRAME_BYTES + 1))
                assert sock.recv(1) == b""  # server closed the stream
            finally:
                sock.close()
            # The listener is unaffected.
            with GatewayClient(gateway.address) as client:
                assert len(client.detect(X[:2], timeout=30)) == 2

    def test_bad_magic_closes_connection_only(self, fitted):
        with DetectionGateway(fitted, tick_ms=0.0).start() as gateway:
            sock = socket.create_connection(gateway.address, timeout=10)
            try:
                client_handshake(sock)
                sock.sendall(struct.pack("!4sI", b"XXXX", 8) + b"garbage!")
                assert sock.recv(1) == b""
            finally:
                sock.close()
            with GatewayClient(gateway.address) as client:
                assert client.ping()

    def test_malformed_rows_get_error_replies(self, fitted, workload):
        X = workload["X_test"]
        n_features = X.shape[1]
        with DetectionGateway(fitted, tick_ms=0.0, max_batch_rows=64).start() as gateway:
            with WorkerConnection(gateway.address) as connection:
                with pytest.raises(ServingError, match="numpy array"):
                    connection.call("detect", rows=[1.0, 2.0], timeout=10)
                with pytest.raises(ServingError, match="features"):
                    connection.call(
                        "detect", rows=np.zeros((2, n_features + 3)), timeout=10
                    )
                with pytest.raises(ServingError, match="numeric"):
                    connection.call(
                        "detect",
                        rows=np.array([["a"] * n_features]),
                        timeout=10,
                    )
                with pytest.raises(ServingError, match="at least one record"):
                    connection.call(
                        "detect", rows=np.zeros((0, n_features)), timeout=10
                    )
                with pytest.raises(ServingError, match="max-batch-rows"):
                    connection.call(
                        "detect", rows=np.zeros((65, n_features)), timeout=10
                    )
                # And the stream is still alive after every rejection.
                result = connection.call("detect", rows=X[:2], timeout=30)
                assert result["batch_rows"] >= 2

    def test_deadline_expiry_is_an_explicit_error(self, fitted, workload):
        X = workload["X_test"]
        # A long tick so the zero-budget request is still queued when the
        # batcher gets to it.
        with DetectionGateway(fitted, tick_ms=150.0).start() as gateway:
            with GatewayClient(gateway.address) as client:
                filler = client.submit(X[:1])  # opens the tick window
                doomed = client.submit(X[1:2], timeout_ms=0.0)
                with pytest.raises(ServingError, match="deadline expired"):
                    doomed.result(timeout=30)
                assert len(filler.result(timeout=30)) == 1
            assert gateway.stats["expired_deadlines"] == 1

    def test_full_pending_queue_rejects_explicitly(self, fitted, workload):
        X = workload["X_test"]
        slow = _SlowDetector(fitted, delay_s=0.5)
        with DetectionGateway(
            slow, tick_ms=0.0, max_batch_rows=2, max_pending_rows=4
        ).start() as gateway:
            with GatewayClient(gateway.address) as client:
                first = client.submit(X[:1])
                time.sleep(0.1)  # r1 is now computing (0.5 s); queue is empty
                admitted = [client.submit(X[i : i + 1]) for i in range(1, 4)]
                rejected = client.submit(X[4:5])  # 4 pending rows + 1 > 4
                with pytest.raises(ServingError, match="queue is full"):
                    rejected.result(timeout=30)
                # Everything admitted is answered, never dropped.
                assert len(first.result(timeout=30)) == 1
                for future in admitted:
                    assert len(future.result(timeout=30)) == 1
            assert gateway.stats["rejected_backpressure"] == 1
            assert gateway.stats["requests"] == 4

    def test_timeout_ms_validation(self, fitted, workload):
        X = workload["X_test"]
        with DetectionGateway(fitted, tick_ms=0.0).start() as gateway:
            with WorkerConnection(gateway.address) as connection:
                with pytest.raises(ServingError, match="timeout_ms"):
                    connection.call("detect", rows=X[:1], timeout_ms=-5, timeout=10)


# --------------------------------------------------------------------------- #
# shutdown / drain
# --------------------------------------------------------------------------- #
class TestDrain:
    def test_drain_answers_every_admitted_request(self, fitted, workload):
        X = workload["X_test"]
        slow = _SlowDetector(fitted, delay_s=0.2)
        gateway = DetectionGateway(slow, tick_ms=0.0, max_batch_rows=2).start()
        client = GatewayClient(gateway.address)
        try:
            futures = [client.submit(X[i : i + 1]) for i in range(6)]
            time.sleep(0.05)  # admission happened; batches are in flight
            gateway.shutdown()  # graceful: drains the 6 admitted requests
            for future in futures:
                assert len(future.result(timeout=30)) == 1
        finally:
            client.close()
        # After drain the listener is gone.
        with pytest.raises((TransportError, OSError)):
            GatewayClient(gateway.address, connect_timeout=2.0)

    def test_shutdown_is_idempotent_and_reentrant(self, fitted):
        gateway = DetectionGateway(fitted, tick_ms=0.0).start()
        gateway.shutdown()
        gateway.shutdown()  # second call is a no-op, not an error

    def test_context_manager_shuts_down(self, fitted):
        with DetectionGateway(fitted, tick_ms=0.0).start() as gateway:
            address = gateway.address
        with pytest.raises((TransportError, OSError)):
            socket.create_connection(address, timeout=2.0).close()


# --------------------------------------------------------------------------- #
# construction
# --------------------------------------------------------------------------- #
class TestConstruction:
    def test_invalid_knobs_rejected(self, fitted):
        with pytest.raises(ConfigurationError, match="tick_ms"):
            DetectionGateway(fitted, tick_ms=-1.0)
        with pytest.raises(ConfigurationError, match="max_batch_rows"):
            DetectionGateway(fitted, max_batch_rows=0)
        with pytest.raises(ConfigurationError, match="max_pending_rows"):
            DetectionGateway(fitted, max_batch_rows=64, max_pending_rows=32)

    def test_unfitted_detector_rejected(self):
        with pytest.raises(ServingError, match="fitted"):
            DetectionGateway(GhsomDetector(GhsomConfig()))

    def test_handshake_advertises_plan_and_model_shape(self, fitted, workload):
        with DetectionGateway(fitted, tick_ms=0.0).start() as gateway:
            with GatewayClient(gateway.address) as client:
                info = client.info
        assert info["n_features"] == workload["X_test"].shape[1]
        assert info["dtype"] == "float64"
        assert isinstance(info["plan"], dict)
        assert info["plan"]["dtype"] == "float64"
