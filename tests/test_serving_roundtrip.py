"""Round-trip regression suite for the serving path (bundle v1/v2 + detect API).

The contract this file pins down:

* **save → load → score is byte-identical** to the in-memory detector for
  every combination of {one-class, labelled} × {per_unit, global} threshold
  strategy, for both the legacy v1 artifact format and the compiled v2
  format (``np.array_equal``, not allclose);
* a **v2 load is scoring-ready without the tree**: no ``GhsomNode`` objects
  exist after load + score, and the tree hydrates lazily only when
  ``detector.model`` is touched;
* **``detect()`` agrees elementwise** with the three separate calls
  (``predict`` / ``score_samples`` / ``predict_category``) on arbitrary
  batches;
* model files are **written atomically** — a failed write never clobbers or
  truncates an existing artifact.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import GhsomDetector
from repro.core.serialization import (
    detector_from_dict,
    detector_to_dict,
    load_detector,
    save_detector,
    write_json_atomic,
)
from repro.exceptions import SerializationError

MODES = ("labelled", "oneclass")
STRATEGIES = ("per_unit", "global")
VERSIONS = (1, 2)


@pytest.fixture(scope="module")
def detectors(fast_config, train_matrix, train_categories):
    """One fitted detector per {mode} x {threshold strategy} combination."""
    fitted = {}
    for mode in MODES:
        for strategy in STRATEGIES:
            detector = GhsomDetector(
                fast_config, threshold_strategy=strategy, random_state=0
            )
            labels = train_categories if mode == "labelled" else None
            detector.fit(train_matrix, labels)
            fitted[(mode, strategy)] = detector
    return fitted


def _json_round_trip(payload):
    """Push the payload through real JSON so float formatting is exercised."""
    return json.loads(json.dumps(payload))


class TestRoundTripByteIdentical:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("version", VERSIONS)
    def test_scores_byte_identical(self, detectors, test_matrix, mode, strategy, version):
        detector = detectors[(mode, strategy)]
        payload = _json_round_trip(detector_to_dict(detector, version=version))
        loaded = detector_from_dict(payload)
        expected = detector.detect(test_matrix)
        observed = loaded.detect(test_matrix)
        assert np.array_equal(observed.scores, expected.scores)
        assert np.array_equal(observed.predictions, expected.predictions)
        assert np.array_equal(observed.leaf_index, expected.leaf_index)
        assert observed.categories == expected.categories

    @pytest.mark.parametrize("version", VERSIONS)
    def test_file_round_trip_byte_identical(self, detectors, test_matrix, tmp_path, version):
        detector = detectors[("labelled", "per_unit")]
        path = tmp_path / f"detector_v{version}.json"
        write_json_atomic(detector_to_dict(detector, version=version), path)
        loaded = load_detector(path)
        assert np.array_equal(
            loaded.score_samples(test_matrix), detector.score_samples(test_matrix)
        )

    def test_random_state_restored(self, detectors):
        detector = detectors[("labelled", "per_unit")]
        loaded = detector_from_dict(detector_to_dict(detector))
        assert loaded.random_state == detector.random_state == 0

    def test_deserialized_strategies_declare_fit_version(self, detectors):
        loaded = detector_from_dict(detector_to_dict(detectors[("labelled", "global")]))
        # Declared in __init__/from_dict, not conjured lazily by fit().
        assert loaded.threshold_.fit_version == 0
        assert loaded.labeler.fit_version == 0


class TestV2ServesWithoutTree:
    def test_no_ghsom_nodes_constructed(self, detectors, test_matrix, monkeypatch):
        import repro.core.ghsom as ghsom_module

        detector = detectors[("labelled", "per_unit")]
        payload = _json_round_trip(detector_to_dict(detector))
        constructed = []
        original_init = ghsom_module.GhsomNode.__init__

        def counting_init(self, *args, **kwargs):
            constructed.append(1)
            return original_init(self, *args, **kwargs)

        monkeypatch.setattr(ghsom_module.GhsomNode, "__init__", counting_init)
        loaded = detector_from_dict(payload)
        loaded.detect(test_matrix)
        assert not constructed
        assert not loaded.tree_is_materialized

    def test_tree_hydrates_lazily_and_matches(self, detectors, test_matrix):
        detector = detectors[("labelled", "per_unit")]
        loaded = detector_from_dict(_json_round_trip(detector_to_dict(detector)))
        loaded.detect(test_matrix)
        assert not loaded.tree_is_materialized
        # Touching .model rebuilds the tree from the stored payload...
        assert loaded.model is not None
        assert loaded.tree_is_materialized
        assert loaded.topology_summary() == detector.topology_summary()
        # ...and the hydrated tree reproduces the compiled path exactly.
        leaf_index, distances = loaded.model.assign_arrays(test_matrix)
        expected = detector.detect(test_matrix)
        assert np.array_equal(leaf_index, expected.leaf_index)

    def test_v1_payload_still_builds_tree_eagerly(self, detectors):
        detector = detectors[("oneclass", "global")]
        loaded = detector_from_dict(
            _json_round_trip(detector_to_dict(detector, version=1))
        )
        assert loaded.tree_is_materialized

    def test_float32_opt_in_close_but_not_exact(self, detectors, test_matrix):
        detector = detectors[("oneclass", "per_unit")]
        payload = _json_round_trip(detector_to_dict(detector))
        narrowed = detector_from_dict(payload, dtype="float32")
        assert str(narrowed.serving_dtype) == "float32"
        expected = detector.score_samples(test_matrix)
        observed = narrowed.score_samples(test_matrix)
        same_leaf = np.array_equal(
            narrowed.detect(test_matrix).leaf_index, detector.detect(test_matrix).leaf_index
        )
        tolerance = np.abs(observed - expected) / np.maximum(np.abs(expected), 1e-12)
        if same_leaf:
            assert tolerance.max() < 1e-3


class TestDetectAgreesWithSeparateCalls:
    @given(data=st.data())
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
    )
    def test_detect_matches_three_calls(self, detectors, test_matrix, data):
        mode = data.draw(st.sampled_from(MODES))
        strategy = data.draw(st.sampled_from(STRATEGIES))
        detector = detectors[(mode, strategy)]
        indices = data.draw(
            st.lists(
                st.integers(0, test_matrix.shape[0] - 1), min_size=1, max_size=64
            )
        )
        batch = test_matrix[np.array(indices, dtype=np.intp)]
        result = detector.detect(batch)
        assert np.array_equal(result.scores, detector.score_samples(batch))
        assert np.array_equal(result.predictions, detector.predict(batch))
        assert result.categories == detector.predict_category(batch)
        # The invariants the scoring contract promises:
        assert np.array_equal(result.predictions, (result.scores > 1.0).astype(int))
        assert len(result) == batch.shape[0]


class TestAtomicWrites:
    def test_failed_replace_leaves_existing_file_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "model.json"
        write_json_atomic({"v": 1}, path)

        def exploding_replace(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            write_json_atomic({"v": 2}, path)
        monkeypatch.undo()
        assert json.loads(path.read_text()) == {"v": 1}
        # The temp file must not be left behind either.
        assert [p.name for p in tmp_path.iterdir()] == ["model.json"]

    def test_unserialisable_payload_leaves_existing_file_intact(self, tmp_path):
        path = tmp_path / "model.json"
        write_json_atomic({"v": 1}, path)
        with pytest.raises(SerializationError):
            write_json_atomic({"bad": object()}, path)
        assert json.loads(path.read_text()) == {"v": 1}

    def test_written_files_are_readable_and_preserve_mode(self, tmp_path):
        """mkstemp's 0600 must not leak into artifacts (train-as-A, serve-as-B)."""
        path = tmp_path / "model.json"
        write_json_atomic({"v": 1}, path)
        assert (path.stat().st_mode & 0o777) == 0o644
        # Rewriting an artifact keeps whatever mode the operator set on it.
        os.chmod(path, 0o600)
        write_json_atomic({"v": 2}, path)
        assert (path.stat().st_mode & 0o777) == 0o600

    def test_save_detector_is_atomic(self, detectors, tmp_path):
        detector = detectors[("labelled", "per_unit")]
        path = tmp_path / "nested" / "detector.json"
        save_detector(detector, path)
        assert load_detector(path).is_fitted
        assert [p.name for p in path.parent.iterdir()] == ["detector.json"]
