"""Property tests: compiled GHSOM inference is bit-identical to the legacy path.

For randomly generated datasets, growth configurations and distance metrics,
a fitted GHSOM's compiled engine must reproduce the legacy recursive descent
*exactly* — same leaf keys, same distances (``np.array_equal``, not allclose),
and at the detector level the same scores, predictions and categories.  This
is the acceptance property of the compiled inference engine: it is a pure
representation change, not an approximation.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Ghsom, GhsomConfig, GhsomDetector, SomTrainingConfig
from repro.core.labeling import UNLABELED

# Fitting a GHSOM per example is expensive: few examples, generous deadline.
FIT_SETTINGS = {
    "max_examples": 12,
    "deadline": None,
    "suppress_health_check": [HealthCheck.too_slow, HealthCheck.data_too_large],
}

METRICS = ("euclidean", "manhattan", "chebyshev")


def _make_dataset(seed: int, n_clusters: int, n_features: int, n_samples: int) -> np.ndarray:
    """Clustered data so random configs actually grow multi-level trees."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-2.0, 2.0, size=(n_clusters, n_features))
    assignments = rng.integers(0, n_clusters, size=n_samples)
    return centers[assignments] + rng.normal(0.0, 0.15, size=(n_samples, n_features))


def _random_config(data) -> GhsomConfig:
    return GhsomConfig(
        tau1=data.draw(st.sampled_from([0.3, 0.5, 0.7])),
        tau2=data.draw(st.sampled_from([0.05, 0.15, 0.4])),
        max_depth=data.draw(st.integers(1, 3)),
        max_map_size=data.draw(st.sampled_from([9, 16, 25])),
        max_growth_rounds=4,
        min_samples_for_expansion=data.draw(st.sampled_from([10, 25])),
        training=SomTrainingConfig(
            epochs=2, metric=data.draw(st.sampled_from(METRICS))
        ),
        random_state=data.draw(st.integers(0, 2**16)),
    )


class TestCompiledModelEquivalence:
    @given(data=st.data())
    @settings(**FIT_SETTINGS)
    def test_assignments_bit_identical(self, data):
        dataset = _make_dataset(
            seed=data.draw(st.integers(0, 2**16)),
            n_clusters=data.draw(st.integers(2, 4)),
            n_features=data.draw(st.integers(2, 5)),
            n_samples=data.draw(st.integers(60, 140)),
        )
        model = Ghsom(_random_config(data)).fit(dataset)
        # Score both in-sample points and perturbed/outlying queries.
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        queries = np.concatenate(
            [dataset[:40], dataset[:20] + rng.normal(0.0, 0.8, (20, dataset.shape[1]))]
        )
        legacy = model.assign_legacy(queries)
        compiled = model.compile()
        leaf_index, distances = model.assign_arrays(queries)

        assert [compiled.leaf_keys[row] for row in leaf_index] == [
            assignment.leaf_key for assignment in legacy
        ]
        np.testing.assert_array_equal(
            distances, np.array([assignment.distance for assignment in legacy])
        )
        assert [int(compiled.leaf_depth[row]) for row in leaf_index] == [
            assignment.depth for assignment in legacy
        ]
        # The dataclass fast path is built from the same arrays.
        assert model.assign(queries) == legacy


class TestCompiledDetectorEquivalence:
    @staticmethod
    def _legacy_scores(detector, X):
        assignments = detector.model.assign_legacy(X)
        distances = [assignment.distance for assignment in assignments]
        leaf_keys = [assignment.leaf_key for assignment in assignments]
        ratios = detector.threshold_.normalize(distances, leaf_keys)
        if detector.labeler is None:
            return np.asarray(ratios, dtype=float)
        scores = np.asarray(ratios, dtype=float).copy()
        for index, key in enumerate(leaf_keys):
            info = detector.labeler.info_of(key)
            if info.label not in ("normal", UNLABELED):
                scores[index] = 1.0 + info.purity + 0.01 * min(ratios[index], 10.0)
        return scores

    @staticmethod
    def _legacy_categories(detector, X):
        assignments = detector.model.assign_legacy(X)
        leaf_keys = [assignment.leaf_key for assignment in assignments]
        distances = [assignment.distance for assignment in assignments]
        ratios = detector.threshold_.normalize(distances, leaf_keys)
        categories = []
        for key, ratio in zip(leaf_keys, ratios, strict=True):
            label = detector.labeler.label_of(key)
            if label == UNLABELED:
                categories.append("unknown" if ratio > 1.0 else "normal")
            elif label == "normal" and ratio > 1.0:
                categories.append("unknown")
            else:
                categories.append(label)
        return categories

    @given(data=st.data())
    @settings(**FIT_SETTINGS)
    def test_scores_predictions_categories_identical(self, data):
        n_features = data.draw(st.integers(2, 4))
        dataset = _make_dataset(
            seed=data.draw(st.integers(0, 2**16)),
            n_clusters=3,
            n_features=n_features,
            n_samples=data.draw(st.integers(70, 120)),
        )
        labeled = data.draw(st.booleans())
        labels = None
        if labeled:
            rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
            labels = list(rng.choice(["normal", "dos", "probe"], size=dataset.shape[0]))
        strategy = data.draw(st.sampled_from(["per_unit", "global"]))
        detector = GhsomDetector(
            _random_config(data), threshold_strategy=strategy, random_state=0
        )
        detector.fit(dataset, labels)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        queries = np.concatenate(
            [dataset[:30], dataset[:15] + rng.normal(0.0, 1.0, (15, n_features))]
        )

        expected_scores = self._legacy_scores(detector, queries)
        np.testing.assert_array_equal(detector.score_samples(queries), expected_scores)
        np.testing.assert_array_equal(
            detector.predict(queries), (expected_scores > 1.0).astype(int)
        )
        if labeled:
            assert detector.predict_category(queries) == self._legacy_categories(
                detector, queries
            )
