"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        first = ensure_rng(42).random(5)
        second = ensure_rng(42).random(5)
        np.testing.assert_allclose(first, second)

    def test_different_seeds_differ(self):
        assert not np.allclose(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_seed_accepted(self):
        seed = np.int64(7)
        first = ensure_rng(seed).random(3)
        second = ensure_rng(7).random(3)
        np.testing.assert_allclose(first, second)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_count_respected(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count_allowed(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(123, 2)
        assert not np.allclose(children[0].random(10), children[1].random(10))

    def test_spawning_is_reproducible(self):
        first = [child.random(4) for child in spawn_rngs(9, 3)]
        second = [child.random(4) for child in spawn_rngs(9, 3)]
        for a, b in zip(first, second, strict=True):
            np.testing.assert_allclose(a, b)
