"""Tests for repro.core.ghsom (the hierarchical model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GhsomConfig, SomTrainingConfig
from repro.core.ghsom import Ghsom
from repro.exceptions import DataValidationError, NotFittedError


@pytest.fixture(scope="module")
def hierarchical_data(rng):
    """Two coarse clusters, each containing two sub-clusters (forces hierarchy)."""
    coarse_centers = np.array([[0.15, 0.15, 0.15, 0.15], [0.85, 0.85, 0.85, 0.85]])
    fine_offsets = np.array([[0.06, -0.06, 0.06, -0.06], [-0.06, 0.06, -0.06, 0.06]])
    blocks = []
    for coarse in coarse_centers:
        for fine in fine_offsets:
            blocks.append(coarse + fine + rng.normal(0.0, 0.015, size=(120, 4)))
    return np.clip(np.concatenate(blocks, axis=0), 0.0, 1.0)


@pytest.fixture(scope="module")
def deep_config():
    return GhsomConfig(
        tau1=0.5,
        tau2=0.08,
        max_depth=3,
        max_map_size=25,
        max_growth_rounds=8,
        min_samples_for_expansion=40,
        training=SomTrainingConfig(epochs=4),
        random_state=0,
    )


@pytest.fixture(scope="module")
def fitted_ghsom(hierarchical_data, deep_config):
    return Ghsom(deep_config).fit(hierarchical_data)


class TestFitting:
    def test_unfitted_model_raises(self, hierarchical_data):
        model = Ghsom(GhsomConfig())
        with pytest.raises(NotFittedError):
            model.assign(hierarchical_data)
        with pytest.raises(NotFittedError):
            model.topology_summary()

    def test_qe0_positive(self, fitted_ghsom):
        assert fitted_ghsom.qe0 > 0.0

    def test_root_exists_with_depth_one(self, fitted_ghsom):
        assert fitted_ghsom.root is not None
        assert fitted_ghsom.root.depth == 1
        assert fitted_ghsom.root.node_id == "root"

    def test_hierarchy_grows_on_nested_data(self, fitted_ghsom):
        """Hierarchical data with tau2 low enough must produce child maps."""
        assert fitted_ghsom.n_maps > 1
        assert fitted_ghsom.depth >= 2

    def test_depth_respects_max_depth(self, hierarchical_data):
        config = GhsomConfig(
            tau1=0.5,
            tau2=0.01,
            max_depth=2,
            max_map_size=16,
            training=SomTrainingConfig(epochs=3),
            random_state=0,
        )
        model = Ghsom(config).fit(hierarchical_data)
        assert model.depth <= 2

    def test_degenerate_identical_data(self):
        data = np.tile([0.3, 0.3, 0.3], (60, 1))
        model = Ghsom(
            GhsomConfig(training=SomTrainingConfig(epochs=2), max_map_size=9, random_state=0)
        ).fit(data)
        assert model.is_fitted
        assert model.n_maps == 1

    def test_reproducible_with_same_seed(self, hierarchical_data, deep_config):
        first = Ghsom(deep_config).fit(hierarchical_data)
        second = Ghsom(deep_config).fit(hierarchical_data)
        assert first.topology_summary() == second.topology_summary()

    def test_node_ids_are_unique_paths(self, fitted_ghsom):
        node_ids = [node.node_id for node in fitted_ghsom.iter_nodes()]
        assert len(node_ids) == len(set(node_ids))
        for node in fitted_ghsom.iter_nodes():
            if node.parent_unit is not None:
                assert node.node_id.endswith(f"/{node.parent_unit}")

    def test_children_trained_on_fewer_samples_than_parent(self, fitted_ghsom):
        for node in fitted_ghsom.iter_nodes():
            for unit, child in node.children.items():
                assert child.unit_count.sum() <= node.unit_count[unit]


class TestAssignment:
    def test_every_sample_gets_a_leaf(self, fitted_ghsom, hierarchical_data):
        assignments = fitted_ghsom.assign(hierarchical_data)
        assert len(assignments) == hierarchical_data.shape[0]

    def test_leaf_units_have_no_children(self, fitted_ghsom, hierarchical_data):
        assignments = fitted_ghsom.assign(hierarchical_data)
        for assignment in assignments[:50]:
            node = fitted_ghsom.get_node(assignment.node_id)
            assert assignment.unit not in node.children

    def test_distances_non_negative(self, fitted_ghsom, hierarchical_data):
        scores = fitted_ghsom.transform(hierarchical_data)
        assert np.all(scores >= 0.0)

    def test_training_data_has_small_distances(self, fitted_ghsom, hierarchical_data):
        scores = fitted_ghsom.transform(hierarchical_data)
        outlier = np.full((1, 4), 2.0)  # far outside the [0, 1] data range
        outlier_score = fitted_ghsom.transform(outlier)[0]
        assert outlier_score > np.percentile(scores, 99)

    def test_wrong_dimensionality_rejected(self, fitted_ghsom):
        with pytest.raises(DataValidationError):
            fitted_ghsom.assign(np.zeros((3, 7)))

    def test_leaf_keys_align_with_assign(self, fitted_ghsom, hierarchical_data):
        subset = hierarchical_data[:20]
        keys = fitted_ghsom.leaf_keys(subset)
        assignments = fitted_ghsom.assign(subset)
        assert keys == [assignment.leaf_key for assignment in assignments]

    def test_hierarchy_separates_subclusters(self, fitted_ghsom, hierarchical_data):
        """Samples from different sub-clusters should mostly land on different leaves."""
        keys = fitted_ghsom.leaf_keys(hierarchical_data)
        first_block = set(keys[:120])
        third_block = set(keys[240:360])
        assert first_block.isdisjoint(third_block)


class TestStructureInspection:
    def test_topology_summary_consistency(self, fitted_ghsom):
        summary = fitted_ghsom.topology_summary()
        assert summary["n_maps"] == fitted_ghsom.n_maps
        assert summary["n_units"] == fitted_ghsom.n_units
        assert summary["n_leaf_units"] <= summary["n_units"]
        assert summary["depth"] == fitted_ghsom.depth
        assert summary["max_units_per_map"] <= fitted_ghsom.config.max_map_size

    def test_get_node_by_id(self, fitted_ghsom):
        assert fitted_ghsom.get_node("root") is fitted_ghsom.root
        with pytest.raises(KeyError):
            fitted_ghsom.get_node("root/999999")

    def test_growth_history_covers_every_map(self, fitted_ghsom):
        history = fitted_ghsom.growth_history()
        assert set(history) == {node.node_id for node in fitted_ghsom.iter_nodes()}
        for events in history.values():
            assert len(events) >= 1

    def test_smaller_tau2_gives_deeper_or_equal_hierarchy(self, hierarchical_data):
        shallow_config = GhsomConfig(
            tau1=0.5, tau2=0.5, max_depth=4, max_map_size=16,
            training=SomTrainingConfig(epochs=3), random_state=0,
        )
        deep_config = GhsomConfig(
            tau1=0.5, tau2=0.03, max_depth=4, max_map_size=16,
            training=SomTrainingConfig(epochs=3), random_state=0,
        )
        shallow = Ghsom(shallow_config).fit(hierarchical_data)
        deep = Ghsom(deep_config).fit(hierarchical_data)
        assert deep.n_maps >= shallow.n_maps
