"""Tests for the PCA-subspace and k-NN baseline detectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.knn import KnnDetector
from repro.baselines.pca_subspace import PcaSubspaceDetector, q_statistic_threshold, _normal_quantile
from repro.eval.metrics import binary_metrics, roc_auc
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError


class TestNormalQuantile:
    def test_median_is_zero(self):
        assert _normal_quantile(0.5) == pytest.approx(0.0, abs=1e-6)

    def test_known_quantiles(self):
        assert _normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-3)
        assert _normal_quantile(0.841344746) == pytest.approx(1.0, abs=1e-3)

    def test_symmetry(self):
        assert _normal_quantile(0.05) == pytest.approx(-_normal_quantile(0.95), abs=1e-6)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            _normal_quantile(0.0)


class TestQStatistic:
    def test_zero_residual_gives_zero_threshold(self):
        assert q_statistic_threshold(np.array([])) == 0.0
        assert q_statistic_threshold(np.array([0.0, 0.0])) == 0.0

    def test_threshold_positive(self):
        assert q_statistic_threshold(np.array([0.5, 0.2, 0.1])) > 0.0

    def test_smaller_alpha_gives_larger_threshold(self):
        eigenvalues = np.array([0.5, 0.2, 0.1])
        assert q_statistic_threshold(eigenvalues, alpha=0.001) > q_statistic_threshold(
            eigenvalues, alpha=0.1
        )


class TestPcaSubspaceDetector:
    def test_detects_offsubspace_anomalies(self, rng):
        """Data living on a plane in 5-D: points off the plane must score higher."""
        basis = rng.random((2, 5))
        normal = rng.random((300, 2)) @ basis + rng.normal(0, 0.01, (300, 5))
        anomalies = normal[:50] + rng.normal(0, 1.0, (50, 5))
        detector = PcaSubspaceDetector(variance_fraction=0.95).fit(normal)
        auc = roc_auc(
            np.concatenate([np.zeros(300), np.ones(50)]),
            detector.score_samples(np.concatenate([normal, anomalies])),
        )
        assert auc > 0.95

    def test_detection_on_kdd_traffic(self, train_matrix, train_categories, test_matrix, test_binary_truth):
        detector = PcaSubspaceDetector().fit(train_matrix, train_categories)
        metrics = binary_metrics(test_binary_truth, detector.predict(test_matrix))
        assert metrics.detection_rate > 0.7

    def test_n_components_override(self, train_matrix):
        detector = PcaSubspaceDetector(n_components=5).fit(train_matrix)
        assert detector.n_retained_components == 5

    def test_variance_fraction_controls_components(self, train_matrix):
        small = PcaSubspaceDetector(variance_fraction=0.5).fit(train_matrix)
        large = PcaSubspaceDetector(variance_fraction=0.99).fit(train_matrix)
        assert large.n_retained_components >= small.n_retained_components

    def test_explained_variance_ratio_sums_to_one(self, train_matrix):
        detector = PcaSubspaceDetector().fit(train_matrix)
        assert detector.explained_variance_ratio().sum() == pytest.approx(1.0)

    def test_percentile_threshold_mode(self, train_matrix):
        detector = PcaSubspaceDetector(threshold_mode="percentile", alpha=0.05).fit(train_matrix)
        scores = detector.score_samples(train_matrix)
        # Roughly alpha of the training data should exceed the threshold.
        assert 0.0 < (scores > 1.0).mean() < 0.15

    def test_unfitted_raises(self, test_matrix):
        with pytest.raises(NotFittedError):
            PcaSubspaceDetector().score_samples(test_matrix)

    def test_wrong_dimensionality_rejected(self, train_matrix):
        detector = PcaSubspaceDetector().fit(train_matrix)
        with pytest.raises(ConfigurationError):
            detector.score_samples(np.zeros((3, train_matrix.shape[1] + 1)))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DataValidationError):
            PcaSubspaceDetector(variance_fraction=1.0)
        with pytest.raises(ConfigurationError):
            PcaSubspaceDetector(threshold_mode="magic")
        with pytest.raises(ConfigurationError):
            PcaSubspaceDetector(n_components=0)


class TestKnnDetector:
    def test_detects_outliers_in_blobs(self, blob_data, rng):
        detector = KnnDetector(n_neighbors=3, percentile=95.0, random_state=0).fit(blob_data)
        outliers = np.full((20, 4), 0.5) + rng.normal(0, 0.02, (20, 4))
        assert detector.predict(outliers).mean() > 0.9

    def test_detection_on_kdd_traffic(self, train_matrix, train_categories, test_matrix, test_binary_truth):
        detector = KnnDetector(random_state=0).fit(train_matrix, train_categories)
        metrics = binary_metrics(test_binary_truth, detector.predict(test_matrix))
        assert metrics.detection_rate > 0.75
        assert metrics.false_positive_rate < 0.15

    def test_reference_subsampling(self, train_matrix):
        detector = KnnDetector(max_reference_size=50, random_state=0).fit(train_matrix)
        assert detector._reference.shape[0] == 50

    def test_scores_nonnegative(self, train_matrix, test_matrix):
        detector = KnnDetector(random_state=0).fit(train_matrix)
        assert detector.score_samples(test_matrix).min() >= 0.0

    def test_chunked_scoring_matches_unchunked(self, train_matrix, test_matrix):
        big_chunks = KnnDetector(chunk_size=10_000, random_state=0).fit(train_matrix)
        small_chunks = KnnDetector(chunk_size=17, random_state=0).fit(train_matrix)
        np.testing.assert_allclose(
            big_chunks.score_samples(test_matrix[:100]),
            small_chunks.score_samples(test_matrix[:100]),
        )

    def test_unfitted_raises(self, test_matrix):
        with pytest.raises(NotFittedError):
            KnnDetector().predict(test_matrix)

    def test_wrong_dimensionality_rejected(self, train_matrix):
        detector = KnnDetector(random_state=0).fit(train_matrix)
        with pytest.raises(ConfigurationError):
            detector.score_samples(np.zeros((3, train_matrix.shape[1] + 2)))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            KnnDetector(n_neighbors=0)
        with pytest.raises(ConfigurationError):
            KnnDetector(percentile=0.0)
        with pytest.raises(ConfigurationError):
            KnnDetector(chunk_size=0)
        with pytest.raises(ConfigurationError):
            KnnDetector(max_reference_size=0)
