"""Tests for repro.core.serialization (model save/load)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.detector import GhsomDetector
from repro.core.ghsom import Ghsom
from repro.core.serialization import (
    detector_from_dict,
    detector_to_dict,
    ghsom_from_dict,
    ghsom_to_dict,
    load_detector,
    load_ghsom,
    save_detector,
    save_ghsom,
)
from repro.exceptions import SerializationError


@pytest.fixture(scope="module")
def fitted_model(fast_config, train_matrix):
    return Ghsom(fast_config).fit(train_matrix)


@pytest.fixture(scope="module")
def fitted_detector(fast_config, train_matrix, train_categories):
    detector = GhsomDetector(fast_config, random_state=0)
    detector.fit(train_matrix, train_categories)
    return detector


class TestGhsomSerialization:
    def test_unfitted_model_rejected(self, fast_config):
        with pytest.raises(SerializationError):
            ghsom_to_dict(Ghsom(fast_config))

    def test_dict_round_trip_preserves_structure(self, fitted_model):
        rebuilt = ghsom_from_dict(ghsom_to_dict(fitted_model))
        assert rebuilt.topology_summary() == fitted_model.topology_summary()

    def test_dict_round_trip_preserves_assignments(self, fitted_model, test_matrix):
        rebuilt = ghsom_from_dict(ghsom_to_dict(fitted_model))
        np.testing.assert_allclose(
            rebuilt.transform(test_matrix), fitted_model.transform(test_matrix)
        )
        assert rebuilt.leaf_keys(test_matrix[:50]) == fitted_model.leaf_keys(test_matrix[:50])

    def test_payload_is_json_serialisable(self, fitted_model):
        json.dumps(ghsom_to_dict(fitted_model))

    def test_file_round_trip(self, fitted_model, tmp_path, test_matrix):
        path = tmp_path / "model.json"
        save_ghsom(fitted_model, path)
        loaded = load_ghsom(path)
        np.testing.assert_allclose(
            loaded.transform(test_matrix[:20]), fitted_model.transform(test_matrix[:20])
        )

    def test_wrong_kind_rejected(self, fitted_model):
        payload = ghsom_to_dict(fitted_model)
        payload["kind"] = "something_else"
        with pytest.raises(SerializationError):
            ghsom_from_dict(payload)

    def test_wrong_version_rejected(self, fitted_model):
        payload = ghsom_to_dict(fitted_model)
        payload["format_version"] = 999
        with pytest.raises(SerializationError):
            ghsom_from_dict(payload)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_ghsom(tmp_path / "missing.json")

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_ghsom(path)


class TestDetectorSerialization:
    def test_unfitted_detector_rejected(self, fast_config):
        with pytest.raises(SerializationError):
            detector_to_dict(GhsomDetector(fast_config))

    def test_dict_round_trip_preserves_predictions(self, fitted_detector, test_matrix):
        rebuilt = detector_from_dict(detector_to_dict(fitted_detector))
        np.testing.assert_array_equal(
            rebuilt.predict(test_matrix), fitted_detector.predict(test_matrix)
        )
        np.testing.assert_allclose(
            rebuilt.score_samples(test_matrix), fitted_detector.score_samples(test_matrix)
        )

    def test_dict_round_trip_preserves_categories(self, fitted_detector, test_matrix):
        rebuilt = detector_from_dict(detector_to_dict(fitted_detector))
        assert rebuilt.predict_category(test_matrix[:40]) == fitted_detector.predict_category(
            test_matrix[:40]
        )

    def test_file_round_trip(self, fitted_detector, test_matrix, tmp_path):
        path = tmp_path / "detector.json"
        save_detector(fitted_detector, path)
        loaded = load_detector(path)
        np.testing.assert_array_equal(
            loaded.predict(test_matrix[:30]), fitted_detector.predict(test_matrix[:30])
        )

    def test_wrong_kind_rejected(self, fitted_detector):
        payload = detector_to_dict(fitted_detector)
        payload["kind"] = "pickle"
        with pytest.raises(SerializationError):
            detector_from_dict(payload)

    def test_oneclass_detector_round_trip(self, fast_config, train_matrix, test_matrix):
        detector = GhsomDetector(fast_config, random_state=0).fit(train_matrix)
        rebuilt = detector_from_dict(detector_to_dict(detector))
        assert rebuilt.labeler is None
        np.testing.assert_array_equal(
            rebuilt.predict(test_matrix[:30]), detector.predict(test_matrix[:30])
        )
