"""Tests for repro.data.records (ConnectionRecord and Dataset)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.records import ConnectionRecord, Dataset
from repro.data.schema import KddSchema
from repro.exceptions import DataValidationError, SchemaError


def _record_values(schema: KddSchema, **overrides):
    values = {}
    for name in schema.feature_names:
        if schema.is_categorical(name):
            values[name] = schema.values_for(name)[0]
        else:
            values[name] = 0.0
    values.update(overrides)
    return values


class TestConnectionRecord:
    def test_valid_record_roundtrip(self):
        schema = KddSchema()
        record = ConnectionRecord(_record_values(schema, duration=5.0), label="smurf")
        assert record.category == "dos"
        assert record.is_attack
        assert len(record.as_row()) == schema.n_features
        assert record.numeric_vector().shape == (len(schema.numeric_features),)

    def test_missing_feature_raises(self):
        schema = KddSchema()
        values = _record_values(schema)
        values.pop("duration")
        with pytest.raises(SchemaError):
            ConnectionRecord(values)

    def test_extra_feature_raises(self):
        schema = KddSchema()
        values = _record_values(schema)
        values["bogus"] = 1.0
        with pytest.raises(SchemaError):
            ConnectionRecord(values)

    def test_bad_categorical_value_raises(self):
        schema = KddSchema()
        values = _record_values(schema, protocol_type="quic")
        with pytest.raises(SchemaError):
            ConnectionRecord(values)

    def test_normal_record_is_not_attack(self):
        record = ConnectionRecord(_record_values(KddSchema()), label="normal")
        assert not record.is_attack


class TestDataset:
    def test_length_and_counts(self, small_dataset):
        assert len(small_dataset) == 600
        counts = small_dataset.class_counts()
        assert sum(counts.values()) == 600
        assert "normal" in counts

    def test_mismatched_labels_raise(self, small_dataset):
        with pytest.raises(DataValidationError):
            Dataset(small_dataset.raw, small_dataset.labels[:-1], schema=small_dataset.schema)

    def test_wrong_column_count_raises(self):
        with pytest.raises(DataValidationError):
            Dataset(np.zeros((3, 5), dtype=object), ["normal"] * 3)

    def test_record_materialisation(self, small_dataset):
        record = small_dataset.record(0)
        assert isinstance(record, ConnectionRecord)
        assert record.label == str(small_dataset.labels[0])

    def test_iteration_yields_all_records(self, small_dataset):
        subset = small_dataset.subset(range(10))
        assert len(list(subset)) == 10

    def test_column_access(self, small_dataset):
        column = small_dataset.column("protocol_type")
        assert set(np.unique(column)).issubset({"tcp", "udp", "icmp"})

    def test_numeric_matrix_shape(self, small_dataset):
        matrix = small_dataset.numeric_matrix()
        assert matrix.shape == (len(small_dataset), 38)
        assert matrix.dtype == float

    def test_categories_and_is_attack_agree(self, small_dataset):
        categories = small_dataset.categories
        attacks = small_dataset.is_attack
        np.testing.assert_array_equal(attacks, categories != "normal")

    def test_subset_preserves_order(self, small_dataset):
        indices = [5, 2, 9]
        subset = small_dataset.subset(indices)
        for position, index in enumerate(indices):
            assert subset.labels[position] == small_dataset.labels[index]

    def test_filter_by_category(self, small_dataset):
        dos_only = small_dataset.filter_by_category("dos")
        assert len(dos_only) > 0
        assert set(dos_only.categories) == {"dos"}

    def test_concat(self, small_dataset):
        first = small_dataset.subset(range(10))
        second = small_dataset.subset(range(10, 30))
        combined = first.concat(second)
        assert len(combined) == 30

    def test_shuffled_preserves_multiset(self, small_dataset):
        shuffled = small_dataset.shuffled(random_state=0)
        assert sorted(map(str, shuffled.labels)) == sorted(map(str, small_dataset.labels))

    def test_sample_without_replacement_bounds(self, small_dataset):
        with pytest.raises(DataValidationError):
            small_dataset.sample(len(small_dataset) + 1)

    def test_sample_with_replacement_allows_oversampling(self, small_dataset):
        sample = small_dataset.sample(len(small_dataset) + 5, replace=True, random_state=0)
        assert len(sample) == len(small_dataset) + 5

    def test_sample_rejects_non_positive(self, small_dataset):
        with pytest.raises(DataValidationError):
            small_dataset.sample(0)

    def test_from_records_roundtrip(self, small_dataset):
        records = [small_dataset.record(index) for index in range(5)]
        rebuilt = Dataset.from_records(records)
        assert len(rebuilt) == 5
        assert list(rebuilt.labels) == [record.label for record in records]

    def test_from_records_empty_raises(self):
        with pytest.raises(DataValidationError):
            Dataset.from_records([])

    def test_empty_like(self, small_dataset):
        empty = Dataset.empty_like(small_dataset)
        assert len(empty) == 0
        assert empty.schema.feature_names == small_dataset.schema.feature_names

    def test_summary_fields(self, small_dataset):
        summary = small_dataset.summary()
        assert summary["n_records"] == len(small_dataset)
        assert 0.0 <= summary["attack_fraction"] <= 1.0
