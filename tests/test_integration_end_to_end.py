"""Integration tests exercising the whole pipeline through the public API."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    AttackInjection,
    GhsomConfig,
    GhsomDetector,
    KddSyntheticGenerator,
    OnlineDetector,
    PreprocessingPipeline,
    SomTrainingConfig,
    StreamingPipeline,
    TrafficSimulator,
    binary_metrics,
    load_detector,
    save_detector,
)


@pytest.fixture(scope="module")
def quick_config():
    return GhsomConfig(
        tau1=0.35,
        tau2=0.1,
        max_depth=2,
        max_map_size=49,
        max_growth_rounds=15,
        min_samples_for_expansion=25,
        training=SomTrainingConfig(epochs=4),
        random_state=0,
    )


class TestPublicApi:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing public symbol {name}"

    def test_quickstart_docstring_flow(self, quick_config):
        generator = KddSyntheticGenerator(random_state=0)
        train, test = generator.generate_train_test(800, 400)
        pipeline = PreprocessingPipeline()
        detector = GhsomDetector(quick_config, random_state=0)
        detector.fit(pipeline.fit_transform(train), train.categories)
        alarms = detector.predict(pipeline.transform(test))
        metrics = binary_metrics(test.is_attack.astype(int), alarms)
        assert metrics.detection_rate > 0.85
        assert metrics.false_positive_rate < 0.15


class TestSyntheticEndToEnd:
    def test_detector_persist_and_reuse(self, quick_config, tmp_path):
        """Train, save, load in a 'different process', and keep identical behaviour."""
        generator = KddSyntheticGenerator(random_state=13)
        train, test = generator.generate_train_test(700, 300)
        pipeline = PreprocessingPipeline()
        X_train = pipeline.fit_transform(train)
        X_test = pipeline.transform(test)
        detector = GhsomDetector(quick_config, random_state=0)
        detector.fit(X_train, train.categories)
        path = tmp_path / "detector.json"
        save_detector(detector, path)
        reloaded = load_detector(path)
        np.testing.assert_array_equal(reloaded.predict(X_test), detector.predict(X_test))

    def test_different_test_mix_still_detected(self, quick_config):
        """Attacks over-represented at test time (KDD-style mismatch) are still caught."""
        generator = KddSyntheticGenerator(random_state=29)
        train, test = generator.generate_train_test(
            900,
            400,
            test_mix={"normal": 0.4, "neptune": 0.2, "portsweep": 0.2, "guess_passwd": 0.2},
        )
        pipeline = PreprocessingPipeline()
        detector = GhsomDetector(quick_config, random_state=0)
        detector.fit(pipeline.fit_transform(train), train.categories)
        metrics = binary_metrics(
            test.is_attack.astype(int), detector.predict(pipeline.transform(test))
        )
        assert metrics.detection_rate > 0.8


class TestNetsimEndToEnd:
    def test_detection_on_simulated_raw_traffic(self, quick_config):
        """Full raw-trace path: simulate packets/flows, extract features, detect attacks."""
        train_sim = TrafficSimulator(duration_seconds=180.0, sessions_per_second=3.0, random_state=1)
        train_dataset = train_sim.run()
        test_sim = TrafficSimulator(
            duration_seconds=180.0,
            sessions_per_second=3.0,
            injections=[
                AttackInjection("neptune", 40.0),
                AttackInjection("portsweep", 100.0),
            ],
            random_state=2,
        )
        test_dataset = test_sim.run()
        pipeline = PreprocessingPipeline()
        X_train = pipeline.fit_transform(train_dataset)
        X_test = pipeline.transform(test_dataset)
        detector = GhsomDetector(quick_config, random_state=0)
        detector.fit(X_train)  # one-class: the training trace is attack-free
        predictions = detector.predict(X_test)
        truth = test_dataset.is_attack.astype(int)
        metrics = binary_metrics(truth, predictions)
        assert metrics.detection_rate > 0.7
        assert metrics.false_positive_rate < 0.3


class TestStreamingEndToEnd:
    def test_online_pipeline_on_mixed_stream(self, quick_config):
        generator = KddSyntheticGenerator(random_state=41)
        normal = generator.generate_normal(800)
        pipeline = PreprocessingPipeline().fit(normal)
        detector = GhsomDetector(quick_config, random_state=0).fit(pipeline.transform(normal))
        stream = generator.generate(1500)
        X = pipeline.transform(stream)
        y = stream.is_attack.astype(int)
        streaming = StreamingPipeline(OnlineDetector(detector), window_size=250)
        reports = streaming.run(X, y)
        summary = streaming.summary()
        assert len(reports) == 6
        assert summary["mean_detection_rate"] > 0.75
        assert summary["mean_false_positive_rate"] < 0.2
