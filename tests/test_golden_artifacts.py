"""Golden-artifact compatibility suite: committed v1/v2/v3 artifacts must
keep loading — and scoring byte-identically — forever.

The fixtures under ``tests/fixtures/artifacts/`` were written by
``regenerate.py`` (same directory) at a pinned seed: one tiny detector saved
in every supported format, a fixed 32-record scoring batch, and the batch's
expected outputs with scores stored as exact ``float.hex()`` strings.

These tests never retrain or rewrite anything.  They load the *committed
bytes* with the current readers, so a format change that silently alters
how existing artifacts deserialize (a renamed key, a changed dtype, a
different restore order) fails here even if the fresh save → load
round-trip tests still pass.  When the format changes *intentionally*,
regenerate the fixtures and commit them with the change.

Two tiers of exactness, on purpose: the three formats must agree with each
other **bit for bit** (that comparison runs within one process, where the
byte-identity contract holds), while the comparison against the *committed*
expected scores allows last-ulp slack (``REL_TOL``) — those were produced
on a different machine, and BLAS GEMM kernels may round the final ulp
differently per CPU microarchitecture.  Any real format regression is
orders of magnitude above that tolerance; decisions, categories and leaf
assignments are still pinned exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.serialization import load_detector

FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures" / "artifacts"
VERSIONS = ("v1", "v2", "v3")

#: Cross-machine slack for the pinned float64 scores: ulp-scale BLAS
#: variation sits around 1e-16 relative; format bugs are >> 1e-9.
REL_TOL = 1e-9


@pytest.fixture(scope="module")
def batch() -> np.ndarray:
    return np.load(FIXTURE_DIR / "batch.npy")


@pytest.fixture(scope="module")
def expected():
    payload = json.loads((FIXTURE_DIR / "expected.json").read_text())
    payload["scores"] = np.array(
        [float.fromhex(value) for value in payload["scores_hex"]], dtype=np.float64
    )
    return payload


@pytest.mark.parametrize("version", VERSIONS)
def test_golden_artifact_scores_pinned(version, batch, expected):
    detector = load_detector(FIXTURE_DIR / f"detector_{version}.json")
    result = detector.detect(batch)
    np.testing.assert_allclose(
        result.scores,
        expected["scores"],
        rtol=REL_TOL,
        atol=0.0,
        err_msg=f"{version} artifact no longer reproduces its pinned scores",
    )
    assert result.predictions.tolist() == expected["predictions"]
    assert [str(category) for category in result.categories] == expected["categories"]
    assert result.leaf_index.tolist() == expected["leaf_index"]


def test_formats_agree_bit_for_bit(batch):
    """Within one process the three formats must score byte-identically."""
    scores = {
        version: load_detector(FIXTURE_DIR / f"detector_{version}.json")
        .detect(batch)
        .scores
        for version in VERSIONS
    }
    assert np.array_equal(scores["v1"], scores["v2"])
    assert np.array_equal(scores["v2"], scores["v3"])


@pytest.mark.parametrize("version", VERSIONS)
def test_golden_artifact_structure_pinned(version, expected):
    detector = load_detector(FIXTURE_DIR / f"detector_{version}.json")
    topology = detector.topology_summary()
    assert topology == expected["topology"]


def test_v3_golden_loads_through_every_path(batch):
    """The binary golden must agree bit-for-bit across mmap, eager, and
    verified loads (all within this process)."""
    path = FIXTURE_DIR / "detector_v3.json"
    reference = load_detector(path).detect(batch).scores
    for kwargs in ({"mmap": False}, {"verify": True}):
        result = load_detector(path, **kwargs).detect(batch)
        assert np.array_equal(result.scores, reference), kwargs


def test_fixture_inventory_complete():
    """Every committed fixture file the suite depends on is present."""
    names = {path.name for path in FIXTURE_DIR.iterdir()}
    required = {
        "batch.npy",
        "expected.json",
        "regenerate.py",
        "detector_v1.json",
        "detector_v2.json",
        "detector_v3.json",
        "detector_v3.npz",
    }
    assert required <= names, sorted(required - names)
