"""Tests for repro.netsim.traffic and repro.netsim.attacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.netsim.attacks import (
    BruteForceAttack,
    BufferOverflowAttack,
    NetworkScanAttack,
    PortScanAttack,
    SmurfAttack,
    SynFloodAttack,
)
from repro.netsim.hosts import NetworkModel
from repro.netsim.traffic import NormalTrafficGenerator


@pytest.fixture(scope="module")
def network():
    return NetworkModel(random_state=3)


class TestNormalTrafficGenerator:
    def test_events_sorted_and_within_duration(self, network):
        generator = NormalTrafficGenerator(network, sessions_per_second=5.0, random_state=0)
        events = generator.generate(30.0)
        assert len(events) > 0
        times = [event.timestamp for event in events]
        assert times == sorted(times)
        assert min(times) >= 0.0

    def test_all_events_labelled_normal(self, network):
        events = NormalTrafficGenerator(network, random_state=0).generate(20.0)
        assert all(event.label == "normal" for event in events)

    def test_rate_scales_volume(self, network):
        slow = NormalTrafficGenerator(network, sessions_per_second=1.0, random_state=0).generate(60.0)
        fast = NormalTrafficGenerator(network, sessions_per_second=10.0, random_state=0).generate(60.0)
        assert len(fast) > 2 * len(slow)

    def test_service_mix_is_diverse(self, network):
        events = NormalTrafficGenerator(network, sessions_per_second=5.0, random_state=1).generate(120.0)
        services = {event.service for event in events}
        assert "http" in services
        assert len(services) >= 4

    def test_mostly_successful_connections(self, network):
        events = NormalTrafficGenerator(network, sessions_per_second=5.0, random_state=2).generate(60.0)
        success = sum(1 for event in events if event.flag == "SF")
        assert success / len(events) > 0.9

    def test_invalid_parameters_rejected(self, network):
        with pytest.raises(SimulationError):
            NormalTrafficGenerator(network, sessions_per_second=0.0)
        with pytest.raises(SimulationError):
            NormalTrafficGenerator(network, random_state=0).generate(0.0)

    def test_start_time_offset(self, network):
        events = NormalTrafficGenerator(network, random_state=0).generate(10.0, start_time=100.0)
        assert all(100.0 <= event.timestamp < 110.0 for event in events)


class TestSynFlood:
    def test_event_signature(self, network):
        events = SynFloodAttack(network, n_connections=100, random_state=0).generate(10.0)
        assert len(events) == 100
        assert all(event.label == "neptune" for event in events)
        assert all(event.flag == "S0" for event in events)
        assert all(event.src_bytes == 0 and event.dst_bytes == 0 for event in events)

    def test_single_victim(self, network):
        events = SynFloodAttack(network, n_connections=50, random_state=0).generate()
        assert len({event.dst_ip for event in events}) == 1

    def test_invalid_parameters_rejected(self, network):
        with pytest.raises(SimulationError):
            SynFloodAttack(network, n_connections=0)


class TestSmurf:
    def test_event_signature(self, network):
        events = SmurfAttack(network, n_connections=80, random_state=0).generate(5.0)
        assert all(event.protocol == "icmp" and event.service == "ecr_i" for event in events)
        assert all(event.label == "smurf" for event in events)
        assert np.mean([event.src_bytes for event in events]) == pytest.approx(1032.0, rel=0.05)

    def test_many_spoofed_sources(self, network):
        events = SmurfAttack(network, n_connections=200, random_state=0).generate()
        assert len({event.src_ip for event in events}) > 10


class TestPortScan:
    def test_many_ports_one_host(self, network):
        events = PortScanAttack(network, n_ports=60, random_state=0).generate(0.0)
        assert len(events) == 60
        assert len({event.dst_ip for event in events}) == 1
        assert len({event.dst_port for event in events}) == 60
        assert all(event.label == "portsweep" for event in events)

    def test_mostly_rejected(self, network):
        events = PortScanAttack(network, n_ports=100, random_state=0).generate()
        rejected = sum(1 for event in events if event.is_rejected)
        assert rejected / len(events) > 0.7


class TestNetworkScan:
    def test_many_hosts_probed(self, network):
        events = NetworkScanAttack(network, random_state=0).generate(0.0)
        assert len({event.dst_ip for event in events}) == len(network.all_internal_addresses())
        assert all(event.label == "ipsweep" for event in events)

    def test_host_limit_respected(self, network):
        events = NetworkScanAttack(network, n_hosts=5, random_state=0).generate()
        assert len({event.dst_ip for event in events}) == 5


class TestBruteForce:
    def test_failed_logins_recorded(self, network):
        events = BruteForceAttack(network, n_attempts=20, random_state=0).generate(0.0)
        assert len(events) == 20
        assert all(event.label == "guess_passwd" for event in events)
        failed = [event.content_value("num_failed_logins") for event in events[:-1]]
        assert all(value >= 1 for value in failed)

    def test_login_service_targeted(self, network):
        events = BruteForceAttack(network, service="pop_3", random_state=0).generate()
        assert all(event.service == "pop_3" for event in events)


class TestBufferOverflow:
    def test_root_shell_in_final_connection(self, network):
        events = BufferOverflowAttack(network, n_connections=3, random_state=0).generate(0.0)
        assert len(events) == 3
        assert events[-1].content_value("root_shell") == 1.0
        assert all(event.label == "buffer_overflow" for event in events)

    def test_interactive_session_characteristics(self, network):
        events = BufferOverflowAttack(network, random_state=0).generate()
        assert all(event.service == "telnet" for event in events)
        assert all(event.duration >= 30.0 for event in events)
