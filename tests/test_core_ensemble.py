"""Tests for repro.core.ensemble (EnsembleDetector)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.kmeans import KMeansDetector
from repro.baselines.pca_subspace import PcaSubspaceDetector
from repro.core.config import GhsomConfig, SomTrainingConfig
from repro.core.detector import GhsomDetector
from repro.core.ensemble import EnsembleDetector
from repro.eval.metrics import binary_metrics, roc_auc
from repro.exceptions import ConfigurationError, NotFittedError


def _fast_ghsom(seed: int) -> GhsomDetector:
    config = GhsomConfig(
        tau1=0.4, tau2=0.1, max_depth=2, max_map_size=36,
        training=SomTrainingConfig(epochs=3), random_state=seed,
    )
    return GhsomDetector(config, random_state=seed)


@pytest.fixture(scope="module")
def fitted_ensemble(train_matrix, train_categories):
    ensemble = EnsembleDetector([lambda s=seed: _fast_ghsom(s) for seed in (0, 1, 2)])
    ensemble.fit(train_matrix, train_categories)
    return ensemble


class TestConstruction:
    def test_empty_members_rejected(self):
        with pytest.raises(ConfigurationError):
            EnsembleDetector([])

    def test_invalid_combination_rejected(self):
        with pytest.raises(ConfigurationError):
            EnsembleDetector([KMeansDetector()], combination="vote")

    def test_non_detector_member_rejected(self, train_matrix):
        ensemble = EnsembleDetector([lambda: "not a detector"])
        with pytest.raises(ConfigurationError):
            ensemble.fit(train_matrix)

    def test_unfitted_raises(self, test_matrix):
        with pytest.raises(NotFittedError):
            EnsembleDetector([KMeansDetector()]).predict(test_matrix)


class TestDetection:
    def test_all_members_fitted(self, fitted_ensemble):
        assert len(fitted_ensemble.members) == 3
        assert all(member.is_fitted for member in fitted_ensemble.members)

    def test_detection_quality(self, fitted_ensemble, test_matrix, test_binary_truth):
        metrics = binary_metrics(test_binary_truth, fitted_ensemble.predict(test_matrix))
        assert metrics.detection_rate > 0.85
        assert metrics.false_positive_rate < 0.15

    def test_ensemble_auc_at_least_close_to_best_member(
        self, fitted_ensemble, test_matrix, test_binary_truth
    ):
        member_aucs = [
            roc_auc(test_binary_truth, member.score_samples(test_matrix))
            for member in fitted_ensemble.members
        ]
        ensemble_auc = roc_auc(test_binary_truth, fitted_ensemble.score_samples(test_matrix))
        assert ensemble_auc >= min(member_aucs) - 0.01

    def test_scores_and_predictions_consistent(self, fitted_ensemble, test_matrix):
        scores = fitted_ensemble.score_samples(test_matrix)
        np.testing.assert_array_equal(
            fitted_ensemble.predict(test_matrix), (scores > 1.0).astype(int)
        )

    @pytest.mark.parametrize("combination", ["mean", "median", "max"])
    def test_all_combinations_work(self, train_matrix, train_categories, test_matrix, combination):
        ensemble = EnsembleDetector(
            [KMeansDetector(n_clusters=15, random_state=0), PcaSubspaceDetector(threshold_mode="percentile")],
            combination=combination,
        )
        ensemble.fit(train_matrix, train_categories)
        assert ensemble.predict(test_matrix).shape == (test_matrix.shape[0],)

    def test_max_combination_is_most_sensitive(self, train_matrix, train_categories, test_matrix):
        members = lambda: [
            KMeansDetector(n_clusters=15, random_state=0),
            KMeansDetector(n_clusters=25, random_state=1),
        ]
        mean_ensemble = EnsembleDetector(members(), combination="mean").fit(train_matrix, train_categories)
        max_ensemble = EnsembleDetector(members(), combination="max").fit(train_matrix, train_categories)
        assert max_ensemble.predict(test_matrix).sum() >= mean_ensemble.predict(test_matrix).sum()

    def test_predict_category_majority_vote(self, fitted_ensemble, test_matrix):
        categories = fitted_ensemble.predict_category(test_matrix[:50])
        assert len(categories) == 50
        assert set(categories).issubset({"normal", "dos", "probe", "r2l", "u2r", "unknown"})

    def test_member_agreement_in_unit_interval(self, fitted_ensemble, test_matrix):
        agreement = fitted_ensemble.member_agreement(test_matrix[:100])
        assert agreement.shape == (100,)
        assert agreement.min() >= 0.0 and agreement.max() <= 1.0
        # With three members, agreement values are multiples of 1/3.
        np.testing.assert_allclose(agreement * 3, np.round(agreement * 3), atol=1e-9)
