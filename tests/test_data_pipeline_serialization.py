"""Tests for PreprocessingPipeline serialization (to_dict / from_dict)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.preprocess import PreprocessingPipeline
from repro.exceptions import ConfigurationError, NotFittedError


class TestPipelineSerialization:
    @pytest.mark.parametrize("scaling", ["minmax", "zscore", "none"])
    def test_round_trip_preserves_transform(self, small_split, scaling):
        train, test = small_split
        pipeline = PreprocessingPipeline(scaling=scaling).fit(train)
        payload = pipeline.to_dict()
        json.dumps(payload)  # must be JSON compatible
        rebuilt = PreprocessingPipeline.from_dict(payload)
        np.testing.assert_allclose(rebuilt.transform(test), pipeline.transform(test))

    def test_round_trip_preserves_feature_names(self, small_dataset):
        pipeline = PreprocessingPipeline().fit(small_dataset)
        rebuilt = PreprocessingPipeline.from_dict(pipeline.to_dict())
        assert rebuilt.feature_names_out == pipeline.feature_names_out

    def test_ordinal_encoding_round_trip(self, small_split):
        train, test = small_split
        pipeline = PreprocessingPipeline(categorical_encoding="ordinal").fit(train)
        rebuilt = PreprocessingPipeline.from_dict(pipeline.to_dict())
        np.testing.assert_allclose(rebuilt.transform(test), pipeline.transform(test))

    def test_unfitted_pipeline_rejected(self):
        with pytest.raises(NotFittedError):
            PreprocessingPipeline().to_dict()

    def test_wrong_kind_rejected(self, small_dataset):
        payload = PreprocessingPipeline().fit(small_dataset).to_dict()
        payload["kind"] = "something_else"
        with pytest.raises(ConfigurationError):
            PreprocessingPipeline.from_dict(payload)

    def test_unknown_scaler_kind_rejected(self, small_dataset):
        payload = PreprocessingPipeline().fit(small_dataset).to_dict()
        payload["scaler"]["kind"] = "robust"
        with pytest.raises(ConfigurationError):
            PreprocessingPipeline.from_dict(payload)
