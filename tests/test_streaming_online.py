"""Tests for repro.streaming.online_detector and repro.streaming.pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.kmeans import KMeansDetector
from repro.core.config import GhsomConfig, SomTrainingConfig
from repro.core.detector import GhsomDetector
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator
from repro.exceptions import ConfigurationError, NotFittedError
from repro.streaming.online_detector import OnlineDetector
from repro.streaming.pipeline import StreamingPipeline, make_drifting_stream


@pytest.fixture(scope="module")
def stream_setup():
    """A fitted detector plus a preprocessed traffic stream with known labels."""
    generator = KddSyntheticGenerator(random_state=31)
    normal = generator.generate_normal(800)
    pipeline = PreprocessingPipeline().fit(normal)
    config = GhsomConfig(
        tau1=0.35,
        tau2=0.1,
        max_depth=2,
        max_map_size=49,
        training=SomTrainingConfig(epochs=4),
        random_state=0,
    )
    detector = GhsomDetector(config, random_state=0).fit(pipeline.transform(normal))
    stream = generator.generate(1200)
    X = pipeline.transform(stream)
    y = stream.is_attack.astype(int)
    return detector, X, y


class TestOnlineDetectorBasics:
    def test_invalid_parameters_rejected(self, stream_setup):
        detector, _, _ = stream_setup
        with pytest.raises(ConfigurationError):
            OnlineDetector(detector, adaptation="quantum")
        with pytest.raises(ConfigurationError):
            OnlineDetector(detector, buffer_size=1)
        with pytest.raises(ConfigurationError):
            OnlineDetector(detector, warmup_size=1)

    def test_process_returns_decisions(self, stream_setup):
        detector, X, _ = stream_setup
        online = OnlineDetector(detector)
        result = online.process(X[:100])
        assert result.predictions.shape == (100,)
        assert result.scores.shape == (100,)
        assert set(np.unique(result.predictions)).issubset({0, 1})

    def test_attacks_detected_online(self, stream_setup):
        detector, X, y = stream_setup
        online = OnlineDetector(detector, adaptation="threshold")
        predictions = np.concatenate(
            [online.process(X[start : start + 200]).predictions for start in range(0, 1200, 200)]
        )
        attack_recall = predictions[y == 1].mean()
        assert attack_recall > 0.8

    def test_score_samples_does_not_update_state(self, stream_setup):
        detector, X, _ = stream_setup
        online = OnlineDetector(detector)
        before = online.score_ewma.n_updates
        online.score_samples(X[:50])
        assert online.score_ewma.n_updates == before

    def test_n_processed_counter(self, stream_setup):
        detector, X, _ = stream_setup
        online = OnlineDetector(detector)
        online.process(X[:100])
        online.process(X[100:150])
        assert online.n_processed == 150


class TestWarmup:
    def test_unfitted_detector_warms_up_then_scores(self, stream_setup):
        _, X, _ = stream_setup
        fresh = KMeansDetector(n_clusters=20, random_state=0)
        online = OnlineDetector(fresh, warmup_size=200)
        first = online.process(X[:150])
        assert first.extra.get("warming_up")
        assert not online.is_ready
        second = online.process(X[150:400])
        assert second.extra.get("warmup_completed")
        assert online.is_ready
        third = online.process(X[400:500])
        assert not third.extra.get("warming_up")

    def test_completing_batch_is_scored_with_fresh_detector(self, stream_setup):
        _, X, _ = stream_setup
        fresh = KMeansDetector(n_clusters=20, random_state=0)
        online = OnlineDetector(fresh, warmup_size=200)
        online.process(X[:150])
        completing = online.process(X[150:400])
        # The detector was fitted inside this very call, so the batch must
        # carry real scores — not the all-normal placeholder zeros.
        assert completing.extra.get("warmup_completed")
        assert not completing.extra.get("warming_up")
        assert np.any(completing.scores > 0.0)
        assert completing.categories is not None
        assert len(completing.categories) == 250
        # ...and the scores are exactly what the fitted detector reports.
        np.testing.assert_array_equal(
            completing.scores, fresh.detect(X[150:400]).scores
        )

    def test_completing_batch_updates_adaptation_state(self, stream_setup):
        _, X, _ = stream_setup
        online = OnlineDetector(KMeansDetector(n_clusters=20, random_state=0), warmup_size=100)
        result = online.process(X[:120])
        assert result.extra.get("warmup_completed")
        # Benign records of the completing batch already feed the EWMA/buffer.
        assert online.score_ewma.n_updates > 0

    def test_score_samples_during_warmup_raises(self, stream_setup):
        _, X, _ = stream_setup
        online = OnlineDetector(KMeansDetector(n_clusters=10, random_state=0), warmup_size=500)
        online.process(X[:100])
        with pytest.raises(NotFittedError):
            online.score_samples(X[:10])


class TestBoundaryDecisionAlignment:
    """The batch and streaming paths share one decision rule.

    Both go through :func:`repro.core.detector.alarm_decisions`: a score
    *strictly above* the threshold alarms, so a score sitting exactly on the
    boundary is "normal" on every path.
    """

    class _ConstantScoreDetector:
        """Stub detector returning a fixed score vector (is_fitted duck-typing)."""

        is_fitted = True

        def __init__(self, scores):
            self._scores = np.asarray(scores, dtype=float)

        def fit(self, X, y=None):
            return self

        def score_samples(self, X):
            return self._scores[: np.asarray(X).shape[0]]

        def predict(self, X):
            from repro.core.detector import alarm_decisions

            return alarm_decisions(self.score_samples(X))

        def detect(self, X):
            from repro.core.detector import DetectionResult, alarm_decisions

            scores = self.score_samples(X)
            predictions = alarm_decisions(scores)
            return DetectionResult(
                scores=scores,
                predictions=predictions,
                categories=["anomaly" if flag else "normal" for flag in predictions],
            )

    def test_score_exactly_at_threshold_is_normal_on_both_paths(self):
        from repro.core.detector import alarm_decisions

        scores = np.array([0.5, 1.0, 1.0 + 1e-12, 2.0])
        stub = self._ConstantScoreDetector(scores)
        batch = np.zeros((4, 3))
        batch_decisions = stub.predict(batch)
        online = OnlineDetector(stub, adaptation="none")
        streaming_decisions = online.process(batch).predictions
        expected = [0, 0, 1, 1]  # exactly-at-threshold does NOT alarm
        assert batch_decisions.tolist() == expected
        assert streaming_decisions.tolist() == expected
        assert alarm_decisions(scores).tolist() == expected

    def test_score_exactly_at_adaptive_scale_is_normal(self):
        stub = self._ConstantScoreDetector(np.array([1.3]))
        online = OnlineDetector(stub, adaptation="threshold")
        # Force a known adaptive scale and verify the strict comparison.
        online._effective_scale = lambda: 1.3
        result = online.process(np.zeros((1, 3)))
        assert result.effective_scale == 1.3
        assert result.predictions.tolist() == [0]

    def test_ghsom_boundary_score_agrees_between_batch_and_stream(self, stream_setup):
        detector, X, _ = stream_setup
        online = OnlineDetector(detector, adaptation="none")
        step = online.process(X[:200])
        np.testing.assert_array_equal(step.predictions, detector.predict(X[:200]))


class TestAdaptation:
    def test_static_mode_keeps_scale_at_one(self, stream_setup):
        detector, X, _ = stream_setup
        online = OnlineDetector(detector, adaptation="none")
        result = online.process(X[:300])
        assert result.effective_scale == 1.0

    def test_threshold_adaptation_raises_scale_under_benign_drift(self, stream_setup):
        detector, _, _ = stream_setup
        generator = KddSyntheticGenerator(random_state=77)
        pipeline = PreprocessingPipeline().fit(generator.generate_normal(400))
        drifted = generator.generate_normal(800)
        # Benign drift: scale up the byte counts of normal traffic.
        raw = drifted.raw.copy()
        for feature in ("src_bytes", "dst_bytes"):
            column = drifted.schema.index_of(feature)
            raw[:, column] = raw[:, column].astype(float) * 4.0
        drifted_dataset = type(drifted)(raw, drifted.labels, schema=drifted.schema)
        X_drifted = pipeline.transform(drifted_dataset)
        online = OnlineDetector(detector, adaptation="threshold", ewma_alpha=0.05)
        scales = [online.process(X_drifted[start : start + 200]).effective_scale for start in range(0, 800, 200)]
        assert scales[-1] >= scales[0]

    def test_refit_mode_counts_refits(self, stream_setup):
        detector, X, _ = stream_setup
        online = OnlineDetector(detector, adaptation="refit", buffer_size=500)
        for start in range(0, 1200, 300):
            online.process(X[start : start + 300])
        assert online.n_refits >= 0  # refitting only happens when drift fires


class TestStreamingPipeline:
    def test_reports_cover_stream(self, stream_setup):
        detector, X, y = stream_setup
        pipeline = StreamingPipeline(OnlineDetector(detector), window_size=300)
        reports = pipeline.run(X, y)
        assert len(reports) == 4
        assert sum(report.n_records for report in reports) == X.shape[0]

    def test_summary_aggregates(self, stream_setup):
        detector, X, y = stream_setup
        pipeline = StreamingPipeline(OnlineDetector(detector), window_size=400)
        pipeline.run(X, y)
        summary = pipeline.summary()
        assert summary["n_windows"] == 3
        assert 0.0 <= summary["mean_detection_rate"] <= 1.0
        assert 0.0 <= summary["mean_false_positive_rate"] <= 1.0
        # Throughput is the aggregate total-records / total-seconds figure.
        assert summary["total_seconds"] > 0.0
        total_records = sum(report.n_records for report in pipeline.reports)
        assert summary["records_per_second"] == pytest.approx(
            total_records / summary["total_seconds"]
        )
        for report in pipeline.reports:
            assert report.seconds >= 0.0
            assert report.records_per_second >= 0.0

    def test_empty_summary(self, stream_setup):
        detector, _, _ = stream_setup
        pipeline = StreamingPipeline(OnlineDetector(detector))
        assert pipeline.summary() == {"n_windows": 0}

    def test_invalid_window_size_rejected(self, stream_setup):
        detector, _, _ = stream_setup
        with pytest.raises(ConfigurationError):
            StreamingPipeline(OnlineDetector(detector), window_size=5)


class TestMakeDriftingStream:
    def test_stream_shape_and_drift_point(self):
        X, y, drift_index = make_drifting_stream(
            lambda seed: KddSyntheticGenerator(random_state=seed),
            n_before=400,
            n_after=400,
            attack_fraction=0.1,
            random_state=3,
        )
        assert X.shape[0] == 800
        assert y.shape[0] == 800
        assert drift_index == 400
        assert 0.02 < y.mean() < 0.25

    def test_drift_changes_normal_traffic_statistics(self):
        X, y, drift_index = make_drifting_stream(
            lambda seed: KddSyntheticGenerator(random_state=seed),
            n_before=400,
            n_after=400,
            drift_scale=3.0,
            random_state=3,
        )
        normal_before = X[:drift_index][y[:drift_index] == 0]
        normal_after = X[drift_index:][y[drift_index:] == 0]
        # The drifted phase must look different on average for normal traffic.
        assert np.linalg.norm(normal_after.mean(axis=0) - normal_before.mean(axis=0)) > 0.05

    def test_too_small_phases_rejected(self):
        with pytest.raises(ConfigurationError):
            make_drifting_stream(
                lambda seed: KddSyntheticGenerator(random_state=seed), n_before=10, n_after=10
            )


class TestServingDtypeRouting:
    """Both stream entry points hand the wrapped detector the serving dtype."""

    class _DtypeSpy:
        """Transparent detector wrapper recording the dtype of scoring input."""

        def __init__(self, inner):
            self._inner = inner
            self.seen_dtypes = []

        def __getattr__(self, name):
            return getattr(self._inner, name)

        def detect(self, X):
            self.seen_dtypes.append(np.asarray(X).dtype)
            return self._inner.detect(X)

        def score_samples(self, X):
            self.seen_dtypes.append(np.asarray(X).dtype)
            return self._inner.score_samples(X)

    def test_score_samples_matches_process_on_float32_detector(self, stream_setup):
        from repro.serving import ServingConfig

        _, X, _ = stream_setup
        config = GhsomConfig(
            tau1=0.35,
            tau2=0.1,
            max_depth=2,
            max_map_size=36,
            training=SomTrainingConfig(epochs=3),
            random_state=7,
        )
        detector = GhsomDetector(config, random_state=7).fit(X[:500])
        detector.configure(ServingConfig(dtype="float32"))
        spy = self._DtypeSpy(detector)
        online = OnlineDetector(spy)
        batch = X[500:620]
        scores_direct = online.score_samples(batch)
        scores_process = online.process(batch).scores
        # Same scores, bit for bit: the two entry points serve the same cast.
        np.testing.assert_array_equal(scores_direct, scores_process)
        assert scores_direct.tobytes() == scores_process.tobytes()
        # The regression pin: score_samples used to bypass _serving_matrix
        # and hand the wrapped detector the raw float64 stream batch.
        assert spy.seen_dtypes == [np.dtype("float32"), np.dtype("float32")]

    def test_float64_detector_batch_passed_through_untouched(self, stream_setup):
        detector, X, _ = stream_setup
        spy = self._DtypeSpy(detector)
        online = OnlineDetector(spy)
        online.score_samples(X[:40])
        assert spy.seen_dtypes == [np.dtype("float64")]


class TestWeightedSummary:
    """summary() reports record-weighted aggregates beside the window means."""

    def test_weighted_vs_mean_on_ragged_tail(self, stream_setup):
        from repro.streaming.pipeline import WindowReport

        detector, _, _ = stream_setup
        pipeline = StreamingPipeline(OnlineDetector(detector), window_size=500)
        # Two full windows and a deliberately short 10-record tail whose
        # metrics are the outlier: the mean view lets the tail move the
        # stream-level figure 1/3 of the way, the weighted view ~1%.
        pipeline.reports = [
            WindowReport(0, 500, 1.0, 0.0, 1.0, False, False, 1.0, seconds=1.0),
            WindowReport(1, 500, 1.0, 0.0, 1.0, False, False, 1.0, seconds=1.0),
            WindowReport(2, 10, 0.0, 1.0, 0.0, False, False, 1.0, seconds=0.1),
        ]
        summary = pipeline.summary()
        assert summary["n_records"] == 1010
        assert summary["mean_accuracy"] == pytest.approx(2.0 / 3.0)
        assert summary["weighted_accuracy"] == pytest.approx(1000.0 / 1010.0)
        assert summary["mean_false_positive_rate"] == pytest.approx(1.0 / 3.0)
        assert summary["weighted_false_positive_rate"] == pytest.approx(10.0 / 1010.0)
        assert summary["mean_detection_rate"] == pytest.approx(2.0 / 3.0)
        assert summary["weighted_detection_rate"] == pytest.approx(1000.0 / 1010.0)

    def test_real_run_with_short_last_window(self, stream_setup):
        detector, X, y = stream_setup
        pipeline = StreamingPipeline(OnlineDetector(detector), window_size=500)
        pipeline.run(X, y)  # 1200 records -> 500, 500, 200 (ragged tail)
        assert [report.n_records for report in pipeline.reports] == [500, 500, 200]
        summary = pipeline.summary()
        assert summary["n_records"] == 1200
        weights = np.asarray([500.0, 500.0, 200.0])
        for weighted_key, attribute in [
            ("weighted_detection_rate", "detection_rate"),
            ("weighted_false_positive_rate", "false_positive_rate"),
            ("weighted_accuracy", "accuracy"),
        ]:
            values = np.asarray(
                [getattr(report, attribute) for report in pipeline.reports]
            )
            assert summary[weighted_key] == pytest.approx(
                float(np.average(values, weights=weights))
            )
