"""Tests for repro.core.grid (map topology)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import MapGrid
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_basic_properties(self):
        grid = MapGrid(3, 4)
        assert grid.n_units == 12
        assert grid.shape == (3, 4)

    def test_minimum_size_enforced(self):
        with pytest.raises(ConfigurationError):
            MapGrid(0, 3)
        with pytest.raises(ConfigurationError):
            MapGrid(3, 0)

    def test_equality_by_shape(self):
        assert MapGrid(2, 3) == MapGrid(2, 3)
        assert MapGrid(2, 3) != MapGrid(3, 2)


class TestIndexing:
    def test_unit_index_and_position_are_inverse(self):
        grid = MapGrid(4, 5)
        for unit in range(grid.n_units):
            row, col = grid.position(unit)
            assert grid.unit_index(row, col) == unit

    def test_row_major_layout(self):
        grid = MapGrid(3, 4)
        assert grid.unit_index(0, 0) == 0
        assert grid.unit_index(0, 3) == 3
        assert grid.unit_index(1, 0) == 4

    def test_out_of_range_rejected(self):
        grid = MapGrid(2, 2)
        with pytest.raises(ConfigurationError):
            grid.unit_index(2, 0)
        with pytest.raises(ConfigurationError):
            grid.position(4)

    def test_iter_units_covers_everything(self):
        grid = MapGrid(2, 3)
        units = list(grid.iter_units())
        assert len(units) == 6
        assert units[0] == (0, 0, 0)
        assert units[-1] == (5, 1, 2)


class TestDistances:
    def test_coordinates_shape(self):
        assert MapGrid(3, 2).coordinates().shape == (6, 2)

    def test_grid_distances_symmetric_with_zero_diagonal(self):
        grid = MapGrid(3, 3)
        distances = grid.grid_distances()
        np.testing.assert_allclose(distances, distances.T)
        np.testing.assert_allclose(np.diag(distances), 0.0)

    def test_adjacent_units_distance_one(self):
        grid = MapGrid(3, 3)
        distances = grid.grid_distances()
        assert distances[grid.unit_index(0, 0), grid.unit_index(0, 1)] == pytest.approx(1.0)
        assert distances[grid.unit_index(0, 0), grid.unit_index(1, 1)] == pytest.approx(np.sqrt(2))

    def test_distances_from_matches_matrix(self):
        grid = MapGrid(4, 4)
        matrix = grid.grid_distances()
        np.testing.assert_allclose(grid.distances_from(5), matrix[5])


class TestNeighbors:
    def test_corner_has_two_neighbors(self):
        grid = MapGrid(3, 3)
        assert len(grid.neighbors(grid.unit_index(0, 0))) == 2

    def test_centre_has_four_neighbors(self):
        grid = MapGrid(3, 3)
        assert len(grid.neighbors(grid.unit_index(1, 1))) == 4

    def test_adjacency_is_symmetric(self):
        grid = MapGrid(3, 4)
        for unit in range(grid.n_units):
            for neighbor in grid.neighbors(unit):
                assert grid.are_adjacent(neighbor, unit)

    def test_not_adjacent_to_self(self):
        grid = MapGrid(3, 3)
        assert not grid.are_adjacent(4, 4)


class TestGrowth:
    def test_row_insertion_increases_rows(self):
        grown = MapGrid(2, 3).with_row_inserted(0)
        assert grown.shape == (3, 3)

    def test_col_insertion_increases_cols(self):
        grown = MapGrid(2, 3).with_col_inserted(1)
        assert grown.shape == (2, 4)

    def test_insertion_position_validated(self):
        with pytest.raises(ConfigurationError):
            MapGrid(2, 2).with_row_inserted(5)
        with pytest.raises(ConfigurationError):
            MapGrid(2, 2).with_col_inserted(-1)

    def test_initial_radius_scales_with_size(self):
        assert MapGrid(2, 2).initial_radius() == pytest.approx(1.0)
        assert MapGrid(10, 4).initial_radius() == pytest.approx(5.0)
