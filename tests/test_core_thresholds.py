"""Tests for repro.core.thresholds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.thresholds import (
    GlobalThreshold,
    PerUnitThreshold,
    make_threshold_strategy,
    threshold_from_dict,
)
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError


class TestGlobalThreshold:
    def test_percentile_threshold(self):
        distances = np.linspace(0.0, 1.0, 101)
        strategy = GlobalThreshold(percentile=90.0).fit(distances)
        assert strategy.threshold == pytest.approx(0.9, abs=0.02)

    def test_normalize_divides_by_threshold(self):
        strategy = GlobalThreshold(percentile=100.0).fit([2.0, 4.0])
        ratios = strategy.normalize([2.0, 8.0], [("root", 0), ("root", 1)])
        np.testing.assert_allclose(ratios, [0.5, 2.0])

    def test_same_threshold_for_every_leaf(self):
        strategy = GlobalThreshold().fit([1.0, 2.0, 3.0])
        assert strategy.threshold_for(("a", 0)) == strategy.threshold_for(("b", 7))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            GlobalThreshold().threshold_for(("root", 0))

    def test_empty_calibration_rejected(self):
        with pytest.raises(ConfigurationError):
            GlobalThreshold().fit([])

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ConfigurationError):
            GlobalThreshold(percentile=0.0)
        with pytest.raises(ConfigurationError):
            GlobalThreshold(percentile=101.0)

    def test_round_trip_dict(self):
        strategy = GlobalThreshold(percentile=95.0).fit([1.0, 5.0, 9.0])
        rebuilt = threshold_from_dict(strategy.to_dict())
        assert isinstance(rebuilt, GlobalThreshold)
        assert rebuilt.threshold == pytest.approx(strategy.threshold)


class TestPerUnitThreshold:
    def _calibrated(self):
        distances = [0.1, 0.12, 0.09, 0.11, 0.1, 0.5, 0.52, 0.48, 0.51, 0.49]
        keys = [("root", 0)] * 5 + [("root", 1)] * 5
        return PerUnitThreshold(k=3.0, min_count=3).fit(distances, keys)

    def test_per_unit_thresholds_differ(self):
        strategy = self._calibrated()
        assert strategy.threshold_for(("root", 1)) > strategy.threshold_for(("root", 0))

    def test_threshold_above_unit_mean(self):
        strategy = self._calibrated()
        assert strategy.threshold_for(("root", 0)) > 0.1

    def test_unknown_leaf_uses_fallback(self):
        strategy = self._calibrated()
        fallback = strategy.threshold_for(("root", 42))
        assert fallback > 0.0

    def test_sparse_unit_uses_fallback(self):
        distances = [0.1] * 10 + [5.0]
        keys = [("root", 0)] * 10 + [("root", 1)]
        strategy = PerUnitThreshold(min_count=5).fit(distances, keys)
        assert strategy.threshold_for(("root", 1)) == strategy.threshold_for(("root", 99))

    def test_normalize_uses_per_unit_scale(self):
        strategy = self._calibrated()
        ratios = strategy.normalize([0.2, 0.2], [("root", 0), ("root", 1)])
        assert ratios[0] > ratios[1]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            PerUnitThreshold().fit([1.0, 2.0], [("root", 0)])

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            PerUnitThreshold().threshold_for(("root", 0))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DataValidationError):
            PerUnitThreshold(k=0.0)
        with pytest.raises(ConfigurationError):
            PerUnitThreshold(min_count=0)
        with pytest.raises(ConfigurationError):
            PerUnitThreshold(fallback_percentile=0.0)

    def test_round_trip_dict(self):
        strategy = self._calibrated()
        rebuilt = threshold_from_dict(strategy.to_dict())
        assert isinstance(rebuilt, PerUnitThreshold)
        assert rebuilt.threshold_for(("root", 0)) == pytest.approx(
            strategy.threshold_for(("root", 0))
        )
        assert rebuilt.threshold_for(("root", 99)) == pytest.approx(
            strategy.threshold_for(("root", 99))
        )


class TestFactory:
    def test_factory_builds_both_kinds(self):
        assert isinstance(make_threshold_strategy("global"), GlobalThreshold)
        assert isinstance(make_threshold_strategy("per_unit", k=2.0), PerUnitThreshold)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            make_threshold_strategy("adaptive_quantile")

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            threshold_from_dict({"kind": "mystery"})
