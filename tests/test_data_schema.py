"""Tests for repro.data.schema."""

from __future__ import annotations

import pytest

from repro.data.schema import (
    ATTACK_CATEGORIES,
    ATTACK_TO_CATEGORY,
    CATEGORICAL_FEATURES,
    FEATURE_NAMES,
    KddSchema,
    attack_category,
    category_labels,
)
from repro.exceptions import SchemaError


class TestFeatureNames:
    def test_schema_has_41_features(self):
        assert len(FEATURE_NAMES) == 41

    def test_feature_names_are_unique(self):
        assert len(set(FEATURE_NAMES)) == len(FEATURE_NAMES)

    def test_categorical_features_are_in_schema(self):
        for name in CATEGORICAL_FEATURES:
            assert name in FEATURE_NAMES

    def test_known_features_present(self):
        for name in ("duration", "src_bytes", "dst_host_srv_rerror_rate", "count"):
            assert name in FEATURE_NAMES


class TestAttackCategory:
    def test_normal_maps_to_normal(self):
        assert attack_category("normal") == "normal"

    def test_named_attacks_map_to_categories(self):
        assert attack_category("smurf") == "dos"
        assert attack_category("portsweep") == "probe"
        assert attack_category("guess_passwd") == "r2l"
        assert attack_category("buffer_overflow") == "u2r"

    def test_trailing_dot_and_case_are_tolerated(self):
        assert attack_category("Smurf.") == "dos"

    def test_category_passthrough(self):
        for category in ATTACK_CATEGORIES:
            assert attack_category(category) == category

    def test_unknown_label_raises(self):
        with pytest.raises(SchemaError):
            attack_category("zero_day_mystery")

    def test_every_mapped_attack_has_valid_category(self):
        for category in ATTACK_TO_CATEGORY.values():
            assert category in ATTACK_CATEGORIES

    def test_category_labels_vectorised(self):
        assert category_labels(["normal", "smurf"]) == ["normal", "dos"]


class TestKddSchema:
    def test_default_schema_dimensions(self):
        schema = KddSchema()
        assert schema.n_features == 41
        assert len(schema.numeric_features) == 38

    def test_index_of_matches_order(self):
        schema = KddSchema()
        assert schema.index_of("duration") == 0
        assert schema.index_of("protocol_type") == 1
        assert schema.index_of(FEATURE_NAMES[-1]) == 40

    def test_index_of_unknown_feature_raises(self):
        with pytest.raises(SchemaError):
            KddSchema().index_of("no_such_feature")

    def test_is_categorical(self):
        schema = KddSchema()
        assert schema.is_categorical("service")
        assert not schema.is_categorical("duration")
        with pytest.raises(SchemaError):
            schema.is_categorical("nope")

    def test_values_for_categorical(self):
        schema = KddSchema()
        assert "tcp" in schema.values_for("protocol_type")
        with pytest.raises(SchemaError):
            schema.values_for("duration")

    def test_validate_row_accepts_well_formed_row(self, small_dataset):
        schema = small_dataset.schema
        schema.validate_row(list(small_dataset.raw[0]))

    def test_validate_row_rejects_wrong_length(self):
        schema = KddSchema()
        with pytest.raises(SchemaError):
            schema.validate_row([0.0] * 40)

    def test_validate_row_rejects_bad_categorical_value(self, small_dataset):
        schema = small_dataset.schema
        row = list(small_dataset.raw[0])
        row[schema.index_of("protocol_type")] = "carrier_pigeon"
        with pytest.raises(SchemaError):
            schema.validate_row(row)

    def test_reduced_schema_rejects_orphan_categoricals(self):
        with pytest.raises(SchemaError):
            KddSchema(feature_names=("duration", "src_bytes"), categorical=("service",))
