"""Tests for repro.eval.crossval and repro.eval.reporting."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines.kmeans import KMeansDetector
from repro.baselines.pca_subspace import PcaSubspaceDetector
from repro.eval.crossval import CrossValidationResult, cross_validate_detector, k_fold_indices
from repro.eval.experiments import evaluate_detector
from repro.eval.reporting import (
    load_results_json,
    render_markdown_report,
    result_to_dict,
    save_markdown_report,
    save_results_json,
)
from repro.exceptions import ConfigurationError, DataValidationError


class TestKFoldIndices:
    def test_partition_covers_everything_once(self):
        folds = k_fold_indices(103, 5, random_state=0)
        assert len(folds) == 5
        combined = np.concatenate(folds)
        assert sorted(combined.tolist()) == list(range(103))

    def test_fold_sizes_balanced(self):
        folds = k_fold_indices(100, 4, random_state=0)
        assert all(len(fold) == 25 for fold in folds)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            k_fold_indices(10, 1)
        with pytest.raises(ConfigurationError):
            k_fold_indices(3, 5)


class TestCrossValidation:
    @pytest.fixture(scope="class")
    def cv_result(self, small_dataset) -> CrossValidationResult:
        return cross_validate_detector(
            lambda: KMeansDetector(n_clusters=20, random_state=0),
            small_dataset,
            n_folds=3,
            random_state=0,
        )

    def test_one_result_per_fold(self, cv_result):
        assert len(cv_result.folds) == 3
        assert {fold.fold for fold in cv_result.folds} == {0, 1, 2}

    def test_summary_fields(self, cv_result):
        summary = cv_result.summary()
        assert summary["n_folds"] == 3
        assert 0.0 <= summary["detection_rate_mean"] <= 1.0
        assert summary["detection_rate_std"] >= 0.0
        assert "roc_auc_mean" in summary

    def test_reasonable_detection_quality(self, cv_result):
        mean_dr, _ = cv_result.mean_std("detection_rate")
        mean_fpr, _ = cv_result.mean_std("false_positive_rate")
        assert mean_dr > 0.7
        assert mean_fpr < 0.2

    def test_per_category_means(self, cv_result):
        means = cv_result.per_category_means()
        assert "normal" in means and "dos" in means
        assert all(0.0 <= value <= 1.0 for value in means.values())

    def test_unsupervised_mode(self, small_dataset):
        result = cross_validate_detector(
            lambda: PcaSubspaceDetector(threshold_mode="percentile"),
            small_dataset,
            n_folds=3,
            supervised=False,
            random_state=1,
        )
        assert len(result.folds) == 3

    def test_too_small_dataset_rejected(self, small_dataset):
        tiny = small_dataset.subset(range(5))
        with pytest.raises(ConfigurationError):
            cross_validate_detector(
                lambda: KMeansDetector(n_clusters=2, random_state=0), tiny, n_folds=5
            )


class TestReporting:
    @pytest.fixture(scope="class")
    def results(self, train_matrix, train_categories, test_matrix, small_split):
        _, test = small_split
        detectors = {
            "kmeans": KMeansDetector(n_clusters=20, random_state=0),
            "pca": PcaSubspaceDetector(threshold_mode="percentile"),
        }
        output = {}
        for name, detector in detectors.items():
            result = evaluate_detector(
                detector,
                train_matrix,
                train_categories,
                test_matrix,
                [str(category) for category in test.categories],
                with_confusion=(name == "kmeans"),
            )
            result.name = name
            output[name] = result
        return output

    def test_result_to_dict_is_json_compatible(self, results):
        payload = result_to_dict(results["kmeans"])
        json.dumps(payload)
        assert payload["name"] == "kmeans"
        assert "confusion" in payload
        assert "detection_rate" in payload["metrics"]

    def test_save_and_load_json(self, results, tmp_path):
        path = tmp_path / "results.json"
        save_results_json(results, path, metadata={"experiment": "unit-test"})
        loaded = load_results_json(path)
        assert set(loaded["results"]) == {"kmeans", "pca"}
        assert loaded["metadata"]["experiment"] == "unit-test"
        assert "generated_at" in loaded

    def test_save_results_json_publishes_atomically(self, results, tmp_path, monkeypatch):
        """A crash mid-publish must leave the previous results file intact.

        Regression test for the repro-lint RPL001 finding: the writer used a
        raw ``write_text`` which could leave a truncated document; it now
        goes through ``atomic_write`` (temp file + fsync + rename).
        """
        import repro.utils.mmapio as mmapio

        path = tmp_path / "results.json"
        save_results_json(results, path, metadata={"run": "first"})
        before = path.read_text()

        def broken_replace(src, dst):
            raise OSError("simulated crash at publish time")

        monkeypatch.setattr(mmapio.os, "replace", broken_replace)
        with pytest.raises(OSError):
            save_results_json(results, path, metadata={"run": "second"})
        monkeypatch.undo()

        assert path.read_text() == before  # old artifact still valid JSON
        assert json.loads(before)["metadata"]["run"] == "first"
        assert list(tmp_path.glob(".*.tmp")) == []  # temp file cleaned up

    def test_empty_results_rejected(self, tmp_path):
        with pytest.raises(DataValidationError):
            save_results_json({}, tmp_path / "empty.json")
        with pytest.raises(DataValidationError):
            render_markdown_report({})

    def test_missing_json_rejected(self, tmp_path):
        with pytest.raises(DataValidationError):
            load_results_json(tmp_path / "nope.json")

    def test_markdown_report_contents(self, results):
        report = render_markdown_report(results, title="Test report", metadata={"seed": 0})
        assert report.startswith("# Test report")
        assert "## Overall comparison" in report
        assert "kmeans" in report and "pca" in report
        assert "Confusion matrix: kmeans" in report
        assert "**seed**: 0" in report

    def test_save_markdown_report(self, results, tmp_path):
        path = tmp_path / "report.md"
        save_markdown_report(results, path)
        assert path.exists()
        assert "Overall comparison" in path.read_text()
