"""Tests for SlidingMatrixWindow, batch SlidingWindow.extend and drift update_many."""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.streaming.drift import MeanShiftDetector, PageHinkleyDetector
from repro.streaming.window import SlidingMatrixWindow, SlidingWindow


class TestSlidingMatrixWindow:
    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            SlidingMatrixWindow(0)

    def test_empty_window(self):
        window = SlidingMatrixWindow(5)
        assert len(window) == 0
        assert not window.is_full
        assert window.n_features is None
        assert window.values().shape == (0, 0)

    def test_fills_in_order(self):
        window = SlidingMatrixWindow(5)
        window.extend(np.array([[1.0, 1.0], [2.0, 2.0]]))
        window.extend(np.array([[3.0, 3.0]]))
        assert len(window) == 3
        assert window.n_features == 2
        np.testing.assert_array_equal(window.values()[:, 0], [1.0, 2.0, 3.0])

    def test_eviction_keeps_most_recent(self):
        window = SlidingMatrixWindow(3)
        for value in range(5):
            window.extend(np.full((1, 2), float(value)))
        assert window.is_full
        np.testing.assert_array_equal(window.values()[:, 0], [2.0, 3.0, 4.0])

    def test_oversized_batch_keeps_tail(self):
        window = SlidingMatrixWindow(3)
        window.extend(np.arange(10, dtype=float).reshape(10, 1))
        np.testing.assert_array_equal(window.values()[:, 0], [7.0, 8.0, 9.0])

    def test_single_row_1d_promoted(self):
        window = SlidingMatrixWindow(2)
        window.extend(np.array([1.0, 2.0, 3.0]))
        assert len(window) == 1
        assert window.n_features == 3

    def test_empty_batch_is_noop(self):
        window = SlidingMatrixWindow(2)
        window.extend(np.zeros((0, 4)))
        assert len(window) == 0
        assert window.n_features is None

    def test_empty_1d_batch_does_not_poison_buffer(self):
        # An empty list must not allocate a 0-feature store or phantom row.
        window = SlidingMatrixWindow(3)
        window.extend([])
        window.extend(np.array([]))
        assert len(window) == 0
        assert window.n_features is None
        window.extend(np.ones((2, 4)))  # real rows still accepted afterwards
        assert len(window) == 2
        assert window.n_features == 4

    def test_dimension_mismatch_rejected(self):
        window = SlidingMatrixWindow(4)
        window.extend(np.zeros((1, 3)))
        with pytest.raises(ConfigurationError):
            window.extend(np.zeros((1, 2)))

    def test_clear_keeps_dimensionality(self):
        window = SlidingMatrixWindow(4)
        window.extend(np.zeros((2, 3)))
        window.clear()
        assert len(window) == 0
        assert window.n_features == 3
        # The empty snapshot keeps the known feature dimension.
        assert window.values().shape == (0, 3)
        window.extend(np.ones((1, 3)))
        np.testing.assert_array_equal(window.values(), [[1.0, 1.0, 1.0]])

    def test_matches_deque_reference_under_random_batches(self):
        """The circular buffer behaves exactly like a maxlen deque of rows."""
        rng = np.random.default_rng(7)
        capacity = 17
        window = SlidingMatrixWindow(capacity)
        reference = deque(maxlen=capacity)
        for _ in range(40):
            batch = rng.normal(size=(int(rng.integers(0, 12)), 3))
            window.extend(batch)
            for row in batch:
                reference.append(row.copy())
            assert len(window) == len(reference)
            if reference:
                np.testing.assert_array_equal(window.values(), np.stack(list(reference)))

    def test_values_returns_a_copy(self):
        window = SlidingMatrixWindow(3)
        window.extend(np.ones((2, 2)))
        snapshot = window.values()
        snapshot[:] = 99.0
        np.testing.assert_array_equal(window.values(), np.ones((2, 2)))


class TestSlidingWindowBatchExtend:
    def test_extend_equivalent_to_appends(self):
        batch_window = SlidingWindow(5)
        loop_window = SlidingWindow(5)
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
        batch_window.extend(values)
        for value in values:
            loop_window.append(value)
        np.testing.assert_array_equal(batch_window.values(), loop_window.values())

    def test_extend_with_ndarray(self):
        window = SlidingWindow(3)
        window.extend(np.arange(10, dtype=float))
        np.testing.assert_array_equal(window.values(), [7.0, 8.0, 9.0])

    def test_extend_empty(self):
        window = SlidingWindow(3)
        window.extend([])
        assert len(window) == 0

    def test_extend_accepts_generators(self):
        window = SlidingWindow(3)
        window.extend(float(value) for value in range(5))
        np.testing.assert_array_equal(window.values(), [2.0, 3.0, 4.0])

    def test_extend_rejects_matrices(self):
        # A row batch belongs in SlidingMatrixWindow; flattening it silently
        # would corrupt the scalar statistics.
        window = SlidingWindow(10)
        with pytest.raises(ConfigurationError):
            window.extend(np.ones((3, 4)))


class TestDriftUpdateMany:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: MeanShiftDetector(reference_size=20, recent_size=5, sensitivity=2.0),
            lambda: PageHinkleyDetector(delta=0.005, threshold=1.0, min_observations=10),
        ],
    )
    def test_update_many_matches_sequential_updates(self, factory):
        rng = np.random.default_rng(3)
        stream = np.concatenate([rng.normal(0.0, 0.1, 60), rng.normal(2.0, 0.1, 60)])
        batched = factory()
        sequential = factory()
        batch_fired = batched.update_many(stream)
        seq_fired = False
        for value in stream:
            seq_fired = sequential.update(float(value)) or seq_fired
        assert batch_fired == seq_fired
        assert batch_fired  # the shifted stream must trigger both

    def test_update_many_accepts_generators(self):
        detector = PageHinkleyDetector(delta=0.0, threshold=0.5, min_observations=2)
        assert detector.update_many(float(v) for v in [0.0, 0.0, 5.0, 5.0])

    def test_update_many_keeps_consuming_after_alarm(self):
        detector = PageHinkleyDetector(delta=0.0, threshold=0.5, min_observations=2)
        reference = PageHinkleyDetector(delta=0.0, threshold=0.5, min_observations=2)
        stream = [0.0, 0.0, 5.0, 5.0, 5.0]
        assert detector.update_many(stream)
        for value in stream:
            reference.update(value)
        # Internal state advanced through the whole batch, like the loop.
        assert detector._count == reference._count
        assert detector._cumulative == reference._cumulative
