"""Tests for distributed shard serving (repro.serving.remote / .transport).

The acceptance property mirrors the sharded engine's: routing shard tasks
through remote TCP workers — any provisioning mode, any number of workers,
workers dying mid-batch — must reproduce the serial backend *byte for
byte*, because a worker that cannot deliver is failed over to local
execution, never silently dropped.  The failure-mode tests pin the
protocol's sharp edges: version mismatches, truncated frames, CRC-mismatch
refusals.
"""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest

from repro.cli import load_bundle, main, save_bundle
from repro.core import GhsomConfig, GhsomDetector, SomTrainingConfig
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator
from repro.exceptions import ConfigurationError, ServingError
from repro.serving import (
    RemoteBackend,
    ShardWorkerServer,
    ShardedGhsom,
    TransportError,
    WorkerConnection,
    make_backend,
    parse_address,
    subtrees_from_compiled,
)
from repro.serving.transport import (
    FRAME_MAGIC,
    PROTOCOL_VERSION,
    recv_frame,
    send_frame,
)


# --------------------------------------------------------------------------- #
# fixtures
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def workload():
    generator = KddSyntheticGenerator(random_state=101)
    train = generator.generate(900)
    test = generator.generate(500)
    pipeline = PreprocessingPipeline()
    return {
        "pipeline": pipeline,
        "X_train": pipeline.fit_transform(train),
        "X_test": pipeline.transform(test),
        "y_train": [str(category) for category in train.categories],
    }


@pytest.fixture(scope="module")
def fitted(workload):
    detector = GhsomDetector(
        GhsomConfig(
            tau1=0.3,
            tau2=0.05,
            max_depth=3,
            max_map_size=36,
            min_samples_for_expansion=25,
            training=SomTrainingConfig(epochs=3),
            random_state=11,
        ),
        random_state=11,
    )
    detector.fit(workload["X_train"], workload["y_train"])
    return detector


@pytest.fixture(scope="module")
def binary_bundle(workload, fitted, tmp_path_factory):
    path = tmp_path_factory.mktemp("remote_model") / "model.json"
    save_bundle(workload["pipeline"], fitted, path, format="binary")
    return path


@pytest.fixture(scope="module")
def reference(binary_bundle, workload):
    """Serial-backend detection result: the byte-identity gold standard."""
    _, detector = load_bundle(binary_bundle, shards=4, shard_backend="serial")
    try:
        return detector.detect(workload["X_test"])
    finally:
        detector.set_sharding(None)


def _assert_identical(result, reference):
    np.testing.assert_array_equal(result.scores, reference.scores)
    assert result.scores.tobytes() == reference.scores.tobytes()
    np.testing.assert_array_equal(result.predictions, reference.predictions)
    np.testing.assert_array_equal(result.leaf_index, reference.leaf_index)
    assert list(result.categories) == list(reference.categories)


def _detect_remote(binary_bundle, workload, backend, n_shards=4):
    _, detector = load_bundle(binary_bundle)
    detector.set_sharding(n_shards, backend=backend)
    try:
        return detector.detect(workload["X_test"])
    finally:
        detector.set_sharding(None)


# --------------------------------------------------------------------------- #
# equivalence over live loopback workers
# --------------------------------------------------------------------------- #
class TestRemoteEquivalence:
    def test_two_loopback_workers_byte_identical(self, binary_bundle, workload, reference):
        with ShardWorkerServer(model_path=binary_bundle).start() as w1, \
                ShardWorkerServer(model_path=binary_bundle).start() as w2:
            backend = RemoteBackend([w1.address, w2.address])
            result = _detect_remote(binary_bundle, workload, backend)
            assert backend.stats["remote_tasks"] > 0
            assert backend.stats["failover_tasks"] == 0
            assert backend.stats["connects"] == 2
        _assert_identical(result, reference)

    def test_remote_matches_process_backend(self, binary_bundle, workload):
        with ShardWorkerServer(model_path=binary_bundle).start() as worker:
            remote = _detect_remote(
                binary_bundle, workload, RemoteBackend([worker.address])
            )
        _, detector = load_bundle(binary_bundle, shards=4, shard_backend="process", workers=2)
        try:
            local = detector.detect(workload["X_test"])
        finally:
            detector.set_sharding(None)
        _assert_identical(remote, local)

    def test_by_value_worker_without_model(self, binary_bundle, workload, reference):
        with ShardWorkerServer().start() as worker:  # no --model on the worker
            backend = RemoteBackend([worker.address])
            result = _detect_remote(binary_bundle, workload, backend)
            assert backend.stats["provision_value"] == 1
            assert backend.stats["provision_reference"] == 0
        _assert_identical(result, reference)

    def test_by_reference_provisioning_used(self, binary_bundle, workload, fitted, reference):
        # K >= the subtree count keeps every shard a single contiguous run,
        # i.e. a view into the mmapped sidecar — the by-reference case.
        n_subtrees = len(subtrees_from_compiled(fitted.model.compile()))
        assert n_subtrees >= 2, "model too small for this test"
        with ShardWorkerServer(model_path=binary_bundle).start() as worker:
            backend = RemoteBackend([worker.address])
            result = _detect_remote(
                binary_bundle, workload, backend, n_shards=n_subtrees
            )
            assert backend.stats["provision_reference"] == 1
            assert backend.stats["provision_value"] == 0
        _assert_identical(result, reference)

    def test_reprovision_on_new_shard_tuple(self, binary_bundle, workload, reference):
        with ShardWorkerServer(model_path=binary_bundle).start() as worker:
            backend = RemoteBackend([worker.address])
            _, detector = load_bundle(binary_bundle)
            detector.set_sharding(2, backend=backend)
            first = detector.detect(workload["X_test"])
            provisions = (
                backend.stats["provision_reference"] + backend.stats["provision_value"]
            )
            assert provisions == 1
            # A resharded detector rebuilds its shard tuple; the worker must
            # be provisioned again (stale arrays would be silently wrong).
            detector.set_sharding(3, backend=backend)
            second = detector.detect(workload["X_test"])
            assert (
                backend.stats["provision_reference"] + backend.stats["provision_value"]
            ) == provisions + 1
            detector.set_sharding(None)
        _assert_identical(first, reference)
        _assert_identical(second, reference)


# --------------------------------------------------------------------------- #
# failover
# --------------------------------------------------------------------------- #
class _DyingWorker:
    """A worker that completes the handshake, then dies on the first task.

    Deterministically reproduces "worker dies mid-batch": the coordinator's
    submitted future fails after dispatch, forcing the failover path.
    """

    def __init__(self):
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = self._listener.getsockname()[:2]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        client, _ = self._listener.accept()
        hello = recv_frame(client)
        assert hello["kind"] == "hello"
        send_frame(
            client,
            {"kind": "hello", "protocol": PROTOCOL_VERSION, "worker": {"sidecar": None}},
        )
        # Acknowledge provisioning so tasks actually get dispatched here...
        provision = recv_frame(client)
        send_frame(client, {"id": provision["id"], "ok": True, "result": {}})
        # ...then die on the first run request, mid-batch.
        recv_frame(client)
        client.close()
        self._listener.close()

    def close(self):
        self._listener.close()


class TestFailover:
    def test_worker_dies_mid_batch_results_byte_identical(
        self, binary_bundle, workload, reference
    ):
        dying = _DyingWorker()
        with ShardWorkerServer(model_path=binary_bundle).start() as healthy:
            backend = RemoteBackend([dying.address, healthy.address])
            result = _detect_remote(binary_bundle, workload, backend)
            assert backend.stats["failover_tasks"] > 0
            assert backend.stats["remote_tasks"] > 0
        dying.close()
        _assert_identical(result, reference)

    def test_all_workers_dead_full_local_fallback(self, binary_bundle, workload, reference):
        worker = ShardWorkerServer(model_path=binary_bundle).start()
        backend = RemoteBackend([worker.address], reconnect_backoff=0.0)
        _, detector = load_bundle(binary_bundle)
        detector.set_sharding(4, backend=backend)
        first = detector.detect(workload["X_test"])
        worker.shutdown()
        second = detector.detect(workload["X_test"])  # connection now dead
        third = detector.detect(workload["X_test"])  # connect refused
        detector.set_sharding(None)
        assert backend.stats["failover_tasks"] > 0
        _assert_identical(first, reference)
        _assert_identical(second, reference)
        _assert_identical(third, reference)

    def test_unreachable_address_runs_locally(self, binary_bundle, workload, reference):
        # A port nothing listens on: connect is refused instantly on loopback.
        probe = socket.create_server(("127.0.0.1", 0))
        dead_address = probe.getsockname()[:2]
        probe.close()
        backend = RemoteBackend([dead_address], connect_timeout=2.0)
        result = _detect_remote(binary_bundle, workload, backend)
        assert backend.stats["remote_tasks"] == 0
        assert backend.stats["failover_tasks"] > 0
        _assert_identical(result, reference)

    def test_restarted_worker_rejoins(self, binary_bundle, workload, reference):
        worker = ShardWorkerServer(model_path=binary_bundle).start()
        host, port = worker.address
        backend = RemoteBackend([worker.address], reconnect_backoff=0.0)
        _, detector = load_bundle(binary_bundle)
        detector.set_sharding(4, backend=backend)
        detector.detect(workload["X_test"])
        worker.shutdown()
        detector.detect(workload["X_test"])  # all failover
        restarted = ShardWorkerServer(host, port, model_path=binary_bundle).start()
        try:
            tasks_before = backend.stats["remote_tasks"]
            result = detector.detect(workload["X_test"])
            assert backend.stats["remote_tasks"] > tasks_before
            assert backend.stats["connects"] == 2
            _assert_identical(result, reference)
        finally:
            detector.set_sharding(None)
            restarted.shutdown()


# --------------------------------------------------------------------------- #
# protocol failure modes
# --------------------------------------------------------------------------- #
class TestProtocol:
    def test_handshake_version_mismatch_rejected(self, binary_bundle):
        with ShardWorkerServer(model_path=binary_bundle).start() as worker:
            with pytest.raises(TransportError, match="protocol"):
                WorkerConnection(worker.address, protocol=PROTOCOL_VERSION + 1)
            # The worker survives a rejected peer and still serves others.
            good = WorkerConnection(worker.address)
            assert good.call("ping", timeout=10.0) == "pong"
            good.close()

    def test_non_protocol_peer_rejected(self, binary_bundle):
        with ShardWorkerServer(model_path=binary_bundle).start() as worker:
            with socket.create_connection(worker.address, timeout=5.0) as sock:
                sock.sendall(b"GET / HTTP/1.1\r\n\r\n")
                # The worker closes without ever interpreting the bytes —
                # either a clean FIN or an RST (unread bytes pending), but
                # never a protocol reply.
                sock.settimeout(5.0)
                try:
                    data = sock.recv(1024)
                except ConnectionResetError:
                    data = b""
                assert data == b""

    def test_truncated_frame_raises(self):
        left, right = socket.socketpair()
        try:
            payload = struct.pack("!4sI", FRAME_MAGIC, 1000) + b"x" * 10
            left.sendall(payload)
            left.close()
            with pytest.raises(TransportError, match="truncated frame"):
                recv_frame(right)
        finally:
            right.close()

    def test_bad_magic_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"HTTP/1.1" + b"\x00" * 16)
            with pytest.raises(TransportError, match="magic"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_implausible_length_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack("!4sI", FRAME_MAGIC, (1 << 31) + 1))
            with pytest.raises(TransportError, match="limit"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_malformed_response_id_kills_connection_promptly(self):
        """A response with a non-coercible id must fail the connection, not
        leave futures hanging until their timeout behind an is_alive lie."""
        listener = socket.create_server(("127.0.0.1", 0))

        def serve():
            client, _ = listener.accept()
            recv_frame(client)  # hello
            send_frame(client, {"kind": "hello", "protocol": PROTOCOL_VERSION, "worker": {}})
            recv_frame(client)  # the request
            send_frame(client, {"id": None, "ok": True, "result": "?"})

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        connection = WorkerConnection(listener.getsockname()[:2])
        future = connection.submit("ping")
        with pytest.raises(TransportError, match="process response frame"):
            future.result(timeout=10.0)
        assert not connection.is_alive
        connection.close()
        listener.close()

    def test_fingerprint_pins_member_layout(self, binary_bundle):
        """Same content CRCs at different offsets must not match: the wire
        carries absolute byte offsets, so a re-packed (reordered) sidecar
        with identical members would silently map the wrong bytes."""
        from repro.core.serialization import sidecar_path_for
        from repro.utils.mmapio import fingerprints_match, sidecar_fingerprint

        fingerprint = sidecar_fingerprint(sidecar_path_for(binary_bundle))
        assert fingerprint["offsets"]  # layout is part of the fingerprint
        assert fingerprints_match(fingerprint, dict(fingerprint))
        names = sorted(fingerprint["offsets"])
        assert len(names) >= 2
        shuffled = dict(fingerprint["offsets"])
        shuffled[names[0]], shuffled[names[1]] = shuffled[names[1]], shuffled[names[0]]
        reordered = {**fingerprint, "offsets": shuffled}
        assert not fingerprints_match(fingerprint, reordered)
        # Content-only headers (no offsets, e.g. v3 artifact JSON) still
        # compare by size + CRCs.
        content_only = {"bytes": fingerprint["bytes"], "crc32": fingerprint["crc32"]}
        assert fingerprints_match(content_only, fingerprint)
        assert not fingerprints_match(
            {**content_only, "bytes": content_only["bytes"] + 1}, fingerprint
        )

    def test_parse_address(self):
        assert parse_address("10.0.0.2:7001") == ("10.0.0.2", 7001)
        assert parse_address("worker-3.internal:9000") == ("worker-3.internal", 9000)
        with pytest.raises(ServingError, match="HOST:PORT"):
            parse_address("no-port-here")
        with pytest.raises(ServingError, match="integer"):
            parse_address("host:notaport")

    def test_parse_address_ipv6(self):
        # Bracketed IPv6 strips the brackets: socket.create_connection wants
        # the bare address, not the bracketed spelling.
        assert parse_address("[::1]:9000") == ("::1", 9000)
        assert parse_address("[fe80::1%eth0]:7001") == ("fe80::1%eth0", 7001)
        # Unbracketed IPv6 is ambiguous (every colon is a plausible split).
        with pytest.raises(ServingError, match="ambiguous"):
            parse_address("::1:9000")
        # Bracketed form without a port (or without brackets closed) rejects.
        with pytest.raises(ServingError, match=r"\[IPV6-ADDR\]:PORT"):
            parse_address("[::1]")
        with pytest.raises(ServingError, match=r"\[IPV6-ADDR\]:PORT"):
            parse_address("[::1")
        with pytest.raises(ServingError, match="integer"):
            parse_address("[::1]:notaport")


# --------------------------------------------------------------------------- #
# by-reference provisioning safety
# --------------------------------------------------------------------------- #
class TestByReferenceSafety:
    def test_crc_mismatch_refused(self, binary_bundle, workload, fitted):
        """A coordinator whose artifact differs from the worker's is refused."""
        with ShardWorkerServer(model_path=binary_bundle).start() as worker:
            connection = WorkerConnection(worker.address)
            sidecar = dict(worker.worker_info()["sidecar"])
            tampered = {name: (value ^ 1) for name, value in sidecar["crc32"].items()}
            with pytest.raises(ServingError, match="CRC-32s differ"):
                connection.call(
                    "provision",
                    timeout=10.0,
                    mode="reference",
                    epoch=0,
                    sidecar={"bytes": sidecar["bytes"], "crc32": tampered},
                    shards=[],
                )
            connection.close()

    def test_mismatched_worker_model_falls_back_to_value(
        self, binary_bundle, workload, reference, tmp_path
    ):
        """Auto mode: a worker with a *different* artifact gets shards by value."""
        generator = KddSyntheticGenerator(random_state=202)
        other_train = generator.generate(400)
        other_pipeline = PreprocessingPipeline()
        other_X = other_pipeline.fit_transform(other_train)
        other = GhsomDetector(
            GhsomConfig(
                tau1=0.5,
                tau2=0.15,
                max_depth=2,
                max_map_size=16,
                training=SomTrainingConfig(epochs=2),
                random_state=5,
            ),
            random_state=5,
        )
        other.fit(other_X, [str(c) for c in other_train.categories])
        other_bundle = tmp_path / "other.json"
        save_bundle(other_pipeline, other, other_bundle, format="binary")
        with ShardWorkerServer(model_path=other_bundle).start() as worker:
            backend = RemoteBackend([worker.address])
            result = _detect_remote(binary_bundle, workload, backend)
            assert backend.stats["provision_value"] == 1
            assert backend.stats["provision_reference"] == 0
            assert backend.stats["failover_tasks"] == 0
        _assert_identical(result, reference)

    def test_strict_reference_mode_requires_mappable_shards(self, workload, fitted):
        """provisioning='reference' with an in-memory model is a hard error.

        The error must surface through the real ``run`` path — strict mode
        promising "never stream arrays" and then silently serving everything
        locally would be worse than no promise at all.
        """
        compiled = fitted.model.compile()  # in-memory arrays, nothing mmapped
        with ShardWorkerServer().start() as worker:
            backend = RemoteBackend([worker.address], provisioning="reference")
            engine = ShardedGhsom.from_compiled(compiled, 2, backend=backend)
            with pytest.raises(ServingError, match="by-reference provisioning requires"):
                engine.assign_arrays(workload["X_test"][:20])
            engine.close()

    def test_strict_reference_refusal_raises_not_failover(
        self, binary_bundle, workload
    ):
        """Strict mode: a worker refusing the reference surfaces to the caller."""
        with ShardWorkerServer().start() as worker:  # no artifact on the worker
            backend = RemoteBackend([worker.address], provisioning="reference")
            _, detector = load_bundle(binary_bundle)
            detector.set_sharding(4, backend=backend)
            with pytest.raises(ServingError, match="without a binary model artifact"):
                detector.detect(workload["X_test"])
            assert backend.stats["failover_tasks"] == 0
            detector.set_sharding(None)

    def test_replaced_artifact_disables_by_reference(
        self, binary_bundle, workload, fitted, reference, tmp_path
    ):
        """An atomically replaced sidecar must not be served by reference.

        After a same-size replacement (new inode) the coordinator still maps
        the *old* bytes while the path — and every worker-side check —
        describes the *new* file; shipping region descriptors would mix
        models silently.  The live-bytes validation downgrades to by-value,
        which streams the true served bytes, so results stay byte-identical.
        """
        import os
        import shutil

        from repro.core.serialization import sidecar_path_for
        from repro.utils.mmapio import npz_member_offsets

        bundle = tmp_path / "model.json"
        shutil.copy(binary_bundle, bundle)
        sidecar = tmp_path / "model.npz"
        shutil.copy(sidecar_path_for(binary_bundle), sidecar)
        _, detector = load_bundle(bundle)  # maps the original sidecar inode
        # Replace the sidecar atomically with a same-size file whose bytes
        # differ inside the codebook member (directory CRCs record the
        # original values, so only the live-bytes check can catch this).
        # Flip near the *end* of the codebook — inside the last subtree's
        # units, a region some shard actually references (the first bytes
        # are the npy header and the root block, which no shard maps).
        data = bytearray(sidecar.read_bytes())
        codebook_nbytes = fitted.model.compile().codebook.nbytes
        position = npz_member_offsets(sidecar)["codebook"] + codebook_nbytes - 8
        data[position] ^= 0xFF
        replacement = tmp_path / "model.npz.new"
        replacement.write_bytes(bytes(data))
        os.replace(replacement, sidecar)
        n_subtrees = len(subtrees_from_compiled(fitted.model.compile()))
        with ShardWorkerServer(model_path=bundle).start() as worker:
            backend = RemoteBackend([worker.address])
            detector.set_sharding(n_subtrees, backend=backend)
            try:
                result = detector.detect(workload["X_test"])
            finally:
                detector.set_sharding(None)
            assert backend.stats["provision_reference"] == 0
            assert backend.stats["provision_value"] == 1
            assert backend.stats["failover_tasks"] == 0
        _assert_identical(result, reference)

    def test_corrupt_sidecar_degrades_worker_to_value(
        self, binary_bundle, workload, reference, tmp_path
    ):
        """A worker whose sidecar is corrupted after startup keeps serving.

        The fingerprint it advertises becomes unavailable (not an unhandled
        exception that bricks every handshake); coordinators fall back to
        streaming shards by value and results stay byte-identical.
        """
        import shutil

        from repro.core.serialization import sidecar_path_for

        bundle = tmp_path / "model.json"
        shutil.copy(binary_bundle, bundle)
        shutil.copy(sidecar_path_for(binary_bundle), tmp_path / "model.npz")
        with ShardWorkerServer(model_path=bundle).start() as worker:
            (tmp_path / "model.npz").write_bytes(b"not a zip at all")
            assert worker.worker_info()["sidecar"] is None
            backend = RemoteBackend([worker.address])
            result = _detect_remote(binary_bundle, workload, backend)
            assert backend.stats["provision_value"] == 1
            assert backend.stats["remote_tasks"] > 0
        _assert_identical(result, reference)

    def test_worker_without_model_refuses_reference(self, binary_bundle):
        with ShardWorkerServer().start() as worker:
            connection = WorkerConnection(worker.address)
            with pytest.raises(ServingError, match="without a binary model artifact"):
                connection.call(
                    "provision",
                    timeout=10.0,
                    mode="reference",
                    epoch=0,
                    sidecar={"bytes": 0, "crc32": {}},
                    shards=[],
                )
            connection.close()


# --------------------------------------------------------------------------- #
# construction & CLI wiring
# --------------------------------------------------------------------------- #
class TestConstruction:
    def test_make_backend_remote_spec(self):
        backend = make_backend("remote:10.0.0.1:7001,10.0.0.2:7002")
        assert backend.name == "remote"
        assert backend.workers == 2
        assert backend.addresses == (("10.0.0.1", 7001), ("10.0.0.2", 7002))
        backend.close()

    def test_make_backend_remote_needs_addresses(self):
        with pytest.raises(ConfigurationError, match="worker addresses"):
            make_backend("remote")

    def test_make_backend_remote_rejects_workers(self):
        with pytest.raises(ConfigurationError, match="address list"):
            make_backend("remote:127.0.0.1:7001", workers=4)

    def test_remote_backend_needs_an_address(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            RemoteBackend([])

    def test_remote_backend_rejects_bad_provisioning(self):
        with pytest.raises(ConfigurationError, match="provisioning"):
            RemoteBackend([("127.0.0.1", 7001)], provisioning="street-magic")

    def test_load_bundle_remote_validation(self, binary_bundle):
        with pytest.raises(ConfigurationError, match="remote"):
            load_bundle(binary_bundle, shards=2, shard_backend="remote")
        with pytest.raises(ConfigurationError, match="conflicts"):
            load_bundle(
                binary_bundle,
                shards=2,
                shard_backend="thread",
                remote_workers="127.0.0.1:7001",
            )
        with pytest.raises(ConfigurationError, match="only apply to sharded serving"):
            load_bundle(binary_bundle, remote_workers="127.0.0.1:7001")


class TestCli:
    def test_detect_via_remote_workers_flag(
        self, binary_bundle, workload, tmp_path, capsys
    ):
        from repro.data.loader import save_csv

        dataset = KddSyntheticGenerator(random_state=33).generate(120)
        input_csv = tmp_path / "records.csv"
        save_csv(dataset, input_csv)
        with ShardWorkerServer(model_path=binary_bundle).start() as worker:
            code = main(
                [
                    "detect",
                    "--model",
                    str(binary_bundle),
                    "--input",
                    str(input_csv),
                    "--shards",
                    "4",
                    "--shard-backend",
                    "remote",
                    "--remote-workers",
                    f"{worker.address[0]}:{worker.address[1]}",
                ]
            )
        captured = capsys.readouterr()
        assert code == 0
        assert "remote backend" in captured.out

    def test_shard_worker_shards_without_model_exits_2(self, capsys):
        code = main(["shard-worker", "--listen", "127.0.0.1:0", "--shards", "4"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--model" in captured.err

    def test_detect_remote_without_addresses_exits_2(self, binary_bundle, tmp_path, capsys):
        code = main(
            [
                "detect",
                "--model",
                str(binary_bundle),
                "--input",
                str(tmp_path / "missing.csv"),
                "--shards",
                "2",
                "--shard-backend",
                "remote",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "remote" in captured.err
