"""Tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.utils.validation import (
    check_array_2d,
    check_fraction,
    check_positive,
    check_probability_vector,
    check_same_length,
)


class TestCheckArray2d:
    def test_list_of_lists_converted(self):
        result = check_array_2d([[1, 2], [3, 4]])
        assert result.shape == (2, 2)
        assert result.dtype == float

    def test_1d_input_becomes_single_row(self):
        assert check_array_2d([1.0, 2.0, 3.0]).shape == (1, 3)

    def test_3d_input_rejected(self):
        with pytest.raises(DataValidationError):
            check_array_2d(np.zeros((2, 2, 2)))

    def test_nan_rejected_by_default(self):
        with pytest.raises(DataValidationError):
            check_array_2d([[1.0, np.nan]])

    def test_nan_allowed_when_requested(self):
        result = check_array_2d([[1.0, np.nan]], allow_nan=True)
        assert np.isnan(result[0, 1])

    def test_min_rows_enforced(self):
        with pytest.raises(DataValidationError):
            check_array_2d([[1.0, 2.0]], min_rows=2)

    def test_min_cols_enforced(self):
        with pytest.raises(DataValidationError):
            check_array_2d([[1.0]], min_cols=2)

    def test_non_numeric_rejected(self):
        with pytest.raises(DataValidationError):
            check_array_2d([["a", "b"]])

    def test_returns_contiguous_copy(self):
        original = np.asfortranarray(np.ones((3, 3)))
        result = check_array_2d(original)
        assert result.flags["C_CONTIGUOUS"]


class TestCheckPositive:
    def test_positive_value_passes(self):
        assert check_positive(1.5, "x") == 1.5

    def test_zero_rejected_when_strict(self):
        with pytest.raises(DataValidationError):
            check_positive(0.0, "x")

    def test_zero_allowed_when_not_strict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(DataValidationError):
            check_positive(-1.0, "x", strict=False)

    def test_infinity_rejected(self):
        with pytest.raises(DataValidationError):
            check_positive(float("inf"), "x")

    def test_non_number_rejected(self):
        with pytest.raises(DataValidationError):
            check_positive("abc", "x")


class TestCheckFraction:
    def test_bounds_inclusive(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0

    def test_bounds_exclusive(self):
        with pytest.raises(DataValidationError):
            check_fraction(0.0, "f", inclusive=False)
        with pytest.raises(DataValidationError):
            check_fraction(1.0, "f", inclusive=False)

    def test_out_of_range_rejected(self):
        with pytest.raises(DataValidationError):
            check_fraction(1.5, "f")


class TestCheckProbabilityVector:
    def test_normalisation(self):
        result = check_probability_vector([1.0, 1.0, 2.0])
        np.testing.assert_allclose(result.sum(), 1.0)
        np.testing.assert_allclose(result, [0.25, 0.25, 0.5])

    def test_negative_weight_rejected(self):
        with pytest.raises(DataValidationError):
            check_probability_vector([0.5, -0.1])

    def test_zero_sum_rejected(self):
        with pytest.raises(DataValidationError):
            check_probability_vector([0.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(DataValidationError):
            check_probability_vector([])

    def test_2d_rejected(self):
        with pytest.raises(DataValidationError):
            check_probability_vector([[0.5, 0.5]])


class TestCheckSameLength:
    def test_equal_lengths_pass(self):
        check_same_length([1, 2], [3, 4])

    def test_unequal_lengths_raise(self):
        with pytest.raises(DataValidationError):
            check_same_length([1, 2], [3])
