"""Tests for repro.core.som (the fixed-size SOM)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SomTrainingConfig
from repro.core.quantization import dataset_quantization_error
from repro.core.som import Som
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError


@pytest.fixture(scope="module")
def trained_som(blob_data):
    som = Som(4, 4, n_features=4, config=SomTrainingConfig(epochs=15), random_state=0)
    som.fit(blob_data)
    return som


class TestConstruction:
    def test_codebook_shape(self):
        som = Som(3, 5, n_features=7, random_state=0)
        assert som.codebook.shape == (15, 7)
        assert som.n_units == 15

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            Som(2, 2, n_features=0)

    def test_set_codebook_validates_shape(self):
        som = Som(2, 2, n_features=3, random_state=0)
        with pytest.raises(ConfigurationError):
            som.set_codebook(np.zeros((5, 3)))

    def test_initialize_from_data_uses_data_range(self, blob_data):
        som = Som(3, 3, n_features=4, random_state=0)
        som.initialize_from_data(blob_data)
        assert som.codebook.min() >= blob_data.min() - 0.05
        assert som.codebook.max() <= blob_data.max() + 0.05


class TestTraining:
    def test_fit_reduces_quantization_error(self, blob_data):
        som = Som(4, 4, n_features=4, config=SomTrainingConfig(epochs=15), random_state=0)
        untrained_error = dataset_quantization_error(blob_data)
        som.fit(blob_data)
        assert som.average_sample_error(blob_data) < untrained_error

    def test_fit_is_reproducible_with_same_seed(self, blob_data):
        first = Som(3, 3, n_features=4, random_state=11).fit(blob_data)
        second = Som(3, 3, n_features=4, random_state=11).fit(blob_data)
        np.testing.assert_allclose(first.codebook, second.codebook)

    def test_fit_rejects_wrong_dimensionality(self, blob_data):
        som = Som(3, 3, n_features=10, random_state=0)
        with pytest.raises(DataValidationError):
            som.fit(blob_data)

    def test_partial_fit_moves_codebook(self, blob_data):
        som = Som(3, 3, n_features=4, random_state=0)
        som.fit(blob_data)
        before = som.codebook.copy()
        shifted = np.clip(blob_data + 0.3, 0.0, 1.0)
        som.partial_fit(shifted, learning_rate=0.5, radius=1.0)
        assert not np.allclose(before, som.codebook)

    def test_partial_fit_without_prior_fit_marks_fitted(self, blob_data):
        som = Som(3, 3, n_features=4, random_state=0)
        som.partial_fit(blob_data)
        assert som.is_fitted


class TestInference:
    def test_unfitted_som_raises(self, blob_data):
        som = Som(3, 3, n_features=4, random_state=0)
        with pytest.raises(NotFittedError):
            som.transform(blob_data)
        with pytest.raises(NotFittedError):
            som.quantization_distances(blob_data)

    def test_transform_returns_valid_units(self, trained_som, blob_data):
        bmus = trained_som.transform(blob_data)
        assert bmus.shape == (blob_data.shape[0],)
        assert bmus.min() >= 0 and bmus.max() < trained_som.n_units

    def test_blobs_map_to_distinct_units(self, trained_som, blob_data):
        """The three well-separated blobs must not collapse onto one unit."""
        bmus = trained_som.transform(blob_data)
        blob_units = [set(bmus[start : start + 80]) for start in (0, 80, 160)]
        assert blob_units[0].isdisjoint(blob_units[1])
        assert blob_units[0].isdisjoint(blob_units[2])

    def test_quantization_distance_small_for_training_data(self, trained_som, blob_data):
        distances = trained_som.quantization_distances(blob_data)
        assert distances.mean() < 0.2

    def test_outlier_has_larger_distance(self, trained_som, blob_data):
        outlier = np.array([[0.5, 0.0, 1.0, 0.5]])
        training_mean = trained_som.quantization_distances(blob_data).mean()
        assert trained_som.quantization_distances(outlier)[0] > 3 * training_mean

    def test_unit_counts_sum_to_samples(self, trained_som, blob_data):
        counts = trained_som.unit_counts(blob_data)
        assert counts.sum() == blob_data.shape[0]
        assert counts.shape == (trained_som.n_units,)

    def test_unit_errors_shape(self, trained_som, blob_data):
        errors = trained_som.unit_errors(blob_data)
        assert errors.shape == (trained_som.n_units,)
        assert np.all(errors >= 0.0)

    def test_mqe_positive_and_finite(self, trained_som, blob_data):
        mqe = trained_som.mean_quantization_error(blob_data)
        assert 0.0 < mqe < 1.0

    def test_topographic_error_in_bounds(self, trained_som, blob_data):
        assert 0.0 <= trained_som.topographic_error(blob_data) <= 1.0


class TestNeighborhoodOptions:
    @pytest.mark.parametrize("neighborhood", ["gaussian", "bubble", "mexican_hat"])
    def test_all_kernels_train(self, blob_data, neighborhood):
        config = SomTrainingConfig(epochs=5, neighborhood=neighborhood)
        som = Som(3, 3, n_features=4, config=config, random_state=0).fit(blob_data)
        assert som.average_sample_error(blob_data) < dataset_quantization_error(blob_data)

    @pytest.mark.parametrize("decay", ["linear", "exponential", "inverse"])
    def test_all_decays_train(self, blob_data, decay):
        config = SomTrainingConfig(epochs=5, decay=decay)
        som = Som(3, 3, n_features=4, config=config, random_state=0).fit(blob_data)
        assert som.is_fitted
