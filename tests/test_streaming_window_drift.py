"""Tests for repro.streaming.window and repro.streaming.drift."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.streaming.drift import MeanShiftDetector, PageHinkleyDetector
from repro.streaming.window import EwmaEstimator, SlidingWindow


class TestSlidingWindow:
    def test_capacity_enforced(self):
        window = SlidingWindow(3)
        window.extend([1.0, 2.0, 3.0, 4.0])
        assert len(window) == 3
        np.testing.assert_allclose(window.values(), [2.0, 3.0, 4.0])

    def test_statistics(self):
        window = SlidingWindow(10)
        window.extend([1.0, 2.0, 3.0])
        assert window.mean() == pytest.approx(2.0)
        assert window.std() == pytest.approx(np.std([1.0, 2.0, 3.0]))
        assert window.percentile(50) == pytest.approx(2.0)

    def test_empty_statistics_are_zero(self):
        window = SlidingWindow(5)
        assert window.mean() == 0.0
        assert window.std() == 0.0
        assert window.percentile(90) == 0.0

    def test_is_full_flag(self):
        window = SlidingWindow(2)
        assert not window.is_full
        window.extend([1.0, 2.0])
        assert window.is_full

    def test_clear(self):
        window = SlidingWindow(2)
        window.extend([1.0, 2.0])
        window.clear()
        assert len(window) == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            SlidingWindow(0)


class TestEwmaEstimator:
    def test_first_value_initialises_mean(self):
        ewma = EwmaEstimator(alpha=0.1)
        ewma.update(5.0)
        assert ewma.mean == 5.0

    def test_mean_tracks_shift(self):
        ewma = EwmaEstimator(alpha=0.2)
        ewma.update_many([1.0] * 50)
        assert ewma.mean == pytest.approx(1.0, abs=1e-3)
        ewma.update_many([3.0] * 50)
        assert ewma.mean == pytest.approx(3.0, abs=0.1)

    def test_larger_alpha_reacts_faster(self):
        slow = EwmaEstimator(alpha=0.01)
        fast = EwmaEstimator(alpha=0.5)
        for estimator in (slow, fast):
            estimator.update_many([0.0] * 20)
            estimator.update_many([1.0] * 5)
        assert fast.mean > slow.mean

    def test_std_positive_for_noisy_stream(self, rng):
        ewma = EwmaEstimator(alpha=0.1)
        ewma.update_many(rng.normal(0.0, 1.0, 200))
        assert ewma.std > 0.1

    def test_initial_value_respected(self):
        ewma = EwmaEstimator(alpha=0.5, initial=10.0)
        assert ewma.mean == 10.0

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            EwmaEstimator(alpha=0.0)
        with pytest.raises(ConfigurationError):
            EwmaEstimator(alpha=1.5)

    def test_update_count(self):
        ewma = EwmaEstimator()
        ewma.update_many([1.0, 2.0, 3.0])
        assert ewma.n_updates == 3


class TestPageHinkley:
    def test_no_drift_on_stationary_stream(self, rng):
        detector = PageHinkleyDetector(delta=0.01, threshold=5.0)
        alarms = [detector.update(value) for value in rng.normal(0.0, 0.1, 500)]
        assert not any(alarms)

    def test_detects_upward_shift(self, rng):
        detector = PageHinkleyDetector(delta=0.01, threshold=2.0, min_observations=30)
        stream = np.concatenate([rng.normal(0.0, 0.1, 200), rng.normal(1.0, 0.1, 200)])
        alarms = [detector.update(value) for value in stream]
        assert any(alarms[200:])
        assert not any(alarms[:200])

    def test_reset_clears_state(self, rng):
        detector = PageHinkleyDetector(threshold=1.0, min_observations=5)
        for value in np.linspace(0.0, 5.0, 100):
            detector.update(value)
        detector.reset()
        assert not detector.update(0.0)

    def test_min_observations_suppresses_early_alarms(self):
        detector = PageHinkleyDetector(threshold=0.001, min_observations=50)
        alarms = [detector.update(value) for value in np.linspace(0, 10, 40)]
        assert not any(alarms)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            PageHinkleyDetector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            PageHinkleyDetector(min_observations=0)


class TestMeanShiftDetector:
    def test_no_drift_on_stationary_stream(self, rng):
        detector = MeanShiftDetector(reference_size=100, recent_size=20, sensitivity=4.0)
        alarms = [detector.update(value) for value in rng.normal(0.0, 0.5, 500)]
        assert sum(alarms) <= 5  # a few random alarms are tolerable

    def test_detects_mean_shift(self, rng):
        detector = MeanShiftDetector(reference_size=100, recent_size=20, sensitivity=3.0)
        stream = np.concatenate([rng.normal(0.0, 0.2, 300), rng.normal(2.0, 0.2, 100)])
        alarms = [detector.update(value) for value in stream]
        assert any(alarms[300:])

    def test_downward_shift_does_not_alarm(self, rng):
        detector = MeanShiftDetector(reference_size=100, recent_size=20, sensitivity=3.0)
        stream = np.concatenate([rng.normal(1.0, 0.2, 300), rng.normal(-1.0, 0.2, 100)])
        alarms = [detector.update(value) for value in stream]
        assert not any(alarms[300:])

    def test_reset(self, rng):
        detector = MeanShiftDetector(reference_size=50, recent_size=10)
        for value in rng.normal(0.0, 0.1, 100):
            detector.update(value)
        detector.reset()
        assert len(detector.reference) == 0
        assert len(detector.recent) == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            MeanShiftDetector(recent_size=1)
        with pytest.raises(ConfigurationError):
            MeanShiftDetector(sensitivity=0.0)
