"""Binary model artifacts (format v3): npz sidecar + mmap load contracts.

What this file pins down:

* **save → load → score is byte-identical** to the in-memory detector for
  the v3 binary format, through the memory-mapped *and* the eager load
  path, for {one-class, labelled} × {per_unit, global}, and through every
  sharded backend (serial / thread / process);
* a **v3 load is O(metadata)**: the compiled arrays come back as read-only
  views into one shared file mapping, no ``GhsomNode`` objects exist after
  load + score, and the tree still hydrates lazily on ``detector.model``;
* shards sliced from a memory-mapped model keep **views into the mapping**
  (single-subtree shards) and **pickle by reference** — a few hundred bytes
  instead of the codebook;
* every documented **corruption / misuse path raises SerializationError**
  with an actionable message: missing sidecar, truncated sidecar, hash
  mismatch, unsupported versions, bare-dict loads that cannot resolve a
  sidecar, attempts to write v3 through the JSON-dict writers;
* the sidecar write is **atomic** exactly like the JSON write: a failed
  replace leaves the previous pair intact and no temp files behind.
"""

from __future__ import annotations

import json
import os
import pickle

import numpy as np
import pytest

from repro.core import GhsomDetector
from repro.core.serialization import (
    detector_from_dict,
    detector_to_dict,
    ghsom_to_dict,
    load_detector,
    load_ghsom,
    save_detector,
    save_ghsom,
)
from repro.exceptions import SerializationError
from repro.serving.planner import plan_shards, subtrees_from_compiled
from repro.serving.shards import build_shards
from repro.utils.mmapio import write_npz_atomic

MODES = ("labelled", "oneclass")
STRATEGIES = ("per_unit", "global")


@pytest.fixture(scope="module")
def detectors(fast_config, train_matrix, train_categories):
    """One fitted detector per {mode} x {threshold strategy} combination."""
    fitted = {}
    for mode in MODES:
        for strategy in STRATEGIES:
            detector = GhsomDetector(
                fast_config, threshold_strategy=strategy, random_state=0
            )
            labels = train_categories if mode == "labelled" else None
            detector.fit(train_matrix, labels)
            fitted[(mode, strategy)] = detector
    return fitted


@pytest.fixture(scope="module")
def v3_artifact(detectors, tmp_path_factory):
    """A labelled/per_unit detector saved in the binary format."""
    path = tmp_path_factory.mktemp("v3") / "detector.json"
    save_detector(detectors[("labelled", "per_unit")], path, format="binary")
    return path


def _corrupt_copy(v3_artifact, tmp_path, mutate):
    """Copy the artifact pair into ``tmp_path`` and let ``mutate`` break it."""
    json_path = tmp_path / "detector.json"
    sidecar = tmp_path / "detector.npz"
    json_path.write_bytes(v3_artifact.read_bytes())
    sidecar.write_bytes(v3_artifact.with_suffix(".npz").read_bytes())
    mutate(json_path, sidecar)
    return json_path


class TestRoundTripByteIdentical:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_scores_byte_identical(self, detectors, test_matrix, tmp_path, mode, strategy):
        detector = detectors[(mode, strategy)]
        path = tmp_path / "detector.json"
        save_detector(detector, path, format="binary")
        loaded = load_detector(path)
        expected = detector.detect(test_matrix)
        observed = loaded.detect(test_matrix)
        assert np.array_equal(observed.scores, expected.scores)
        assert np.array_equal(observed.predictions, expected.predictions)
        assert np.array_equal(observed.leaf_index, expected.leaf_index)
        assert list(observed.categories) == list(expected.categories)

    def test_eager_load_matches_mmap_load(self, v3_artifact, test_matrix):
        mapped = load_detector(v3_artifact)
        eager = load_detector(v3_artifact, mmap=False, verify=True)
        assert np.array_equal(
            mapped.detect(test_matrix).scores, eager.detect(test_matrix).scores
        )

    def test_float32_opt_in(self, v3_artifact):
        narrowed = load_detector(v3_artifact, dtype="float32")
        assert str(narrowed.serving_dtype) == "float32"

    def test_ghsom_binary_round_trip(self, detectors, test_matrix, tmp_path):
        model = detectors[("oneclass", "global")].model
        path = tmp_path / "model.json"
        save_ghsom(model, path, format="binary")
        loaded = load_ghsom(path)
        assert np.array_equal(
            loaded.transform(test_matrix[:40]), model.transform(test_matrix[:40])
        )
        assert loaded.topology_summary() == model.topology_summary()

    def test_unknown_format_rejected(self, detectors, tmp_path):
        with pytest.raises(SerializationError, match="unknown artifact format"):
            save_detector(
                detectors[("labelled", "per_unit")], tmp_path / "x.json", format="pickle"
            )

    def test_npz_suffixed_path_rejected(self, detectors, tmp_path):
        """A JSON path ending in .npz would collide with its own sidecar."""
        with pytest.raises(SerializationError, match="collides with its sidecar"):
            save_detector(
                detectors[("labelled", "per_unit")],
                tmp_path / "model.npz",
                format="binary",
            )
        assert list(tmp_path.iterdir()) == []  # nothing half-written


class TestMmapServing:
    def test_arrays_are_shared_readonly_views(self, v3_artifact, test_matrix):
        loaded = load_detector(v3_artifact)
        compiled = loaded._compiled
        assert isinstance(compiled.codebook, np.memmap)
        assert not compiled.codebook.flags.writeable
        # One shared mapping: every mapped array resolves to the same file.
        assert compiled.codebook.filename == compiled.unit_norms.filename
        # Scoring must work on the read-only arrays without copying them back.
        loaded.detect(test_matrix)
        assert isinstance(compiled.codebook, np.memmap)

    def test_no_tree_after_load_and_score(self, v3_artifact, test_matrix, monkeypatch):
        import repro.core.ghsom as ghsom_module

        constructed = []
        original_init = ghsom_module.GhsomNode.__init__

        def counting_init(self, *args, **kwargs):
            constructed.append(1)
            return original_init(self, *args, **kwargs)

        monkeypatch.setattr(ghsom_module.GhsomNode, "__init__", counting_init)
        loaded = load_detector(v3_artifact)
        loaded.detect(test_matrix)
        assert not constructed
        assert not loaded.tree_is_materialized

    def test_tree_hydrates_lazily_and_matches(self, detectors, v3_artifact, test_matrix):
        detector = detectors[("labelled", "per_unit")]
        loaded = load_detector(v3_artifact)
        loaded.detect(test_matrix)
        assert not loaded.tree_is_materialized
        assert loaded.topology_summary() == detector.topology_summary()
        assert loaded.tree_is_materialized
        leaf_index, _ = loaded.model.assign_arrays(test_matrix)
        assert np.array_equal(leaf_index, detector.detect(test_matrix).leaf_index)

    @pytest.mark.parametrize("backend", ("serial", "thread", "process"))
    def test_sharded_load_paths_byte_identical(
        self, detectors, v3_artifact, test_matrix, backend
    ):
        expected = detectors[("labelled", "per_unit")].detect(test_matrix)
        loaded = load_detector(v3_artifact)
        loaded.set_sharding(
            3, backend=backend, workers=None if backend == "serial" else 2
        )
        try:
            observed = loaded.detect(test_matrix)
        finally:
            loaded.set_sharding(None)
        assert np.array_equal(observed.scores, expected.scores)
        assert list(observed.categories) == list(expected.categories)

    def test_single_subtree_shards_are_views_and_pickle_by_reference(
        self, v3_artifact
    ):
        compiled = load_detector(v3_artifact)._compiled
        n_subtrees = len(subtrees_from_compiled(compiled))
        if n_subtrees < 2:
            pytest.skip("model grew a single root subtree")
        # One shard per subtree: every shard is one contiguous run.
        shards = build_shards(compiled, plan_shards(compiled, n_subtrees))
        for shard in shards:
            assert isinstance(shard.codebook, np.memmap)
            assert shard.codebook.base is not None  # a view, not a copy
            payload = pickle.dumps(shard)
            # By reference: orders of magnitude below the codebook bytes.
            assert len(payload) < max(2048, shard.codebook.nbytes // 4)
            restored = pickle.loads(payload)
            assert isinstance(restored.codebook, np.memmap)
            assert np.array_equal(
                np.asarray(restored.codebook), np.asarray(shard.codebook)
            )
            assert np.array_equal(
                np.asarray(restored.leaf_global_row), np.asarray(shard.leaf_global_row)
            )


class TestCorruptionAndMisuse:
    def test_missing_sidecar(self, v3_artifact, tmp_path):
        path = _corrupt_copy(v3_artifact, tmp_path, lambda js, sc: sc.unlink())
        with pytest.raises(SerializationError, match="missing binary sidecar"):
            load_detector(path)

    def test_truncated_sidecar(self, v3_artifact, tmp_path):
        def truncate(js, sc):
            sc.write_bytes(sc.read_bytes()[:-64])

        path = _corrupt_copy(v3_artifact, tmp_path, truncate)
        with pytest.raises(SerializationError, match="truncated|bytes"):
            load_detector(path)

    def test_same_size_content_swap_caught_without_verify(self, v3_artifact, tmp_path):
        """Member CRCs are checked on *every* load: a same-size sidecar that
        does not belong to the JSON header fails even at verify=False."""

        def flip_byte(js, sc):
            blob = bytearray(sc.read_bytes())
            blob[-100] ^= 0xFF  # same size, different content
            sc.write_bytes(bytes(blob))

        path = _corrupt_copy(v3_artifact, tmp_path, flip_byte)
        with pytest.raises(SerializationError, match="checksums differ"):
            load_detector(path)

    def test_hash_mismatch_detected_on_verify(self, v3_artifact, tmp_path):
        """Corruption in zip structure (outside member data) only the full
        hash can see: flip a byte inside an alignment-padding extra field —
        size unchanged, member CRCs unchanged, sha256 different."""
        import zipfile

        def flip_padding_byte(js, sc):
            blob = bytearray(sc.read_bytes())
            with zipfile.ZipFile(sc) as archive:
                offsets = [info.header_offset for info in archive.infolist()]
            for offset in offsets:
                name_length = int.from_bytes(blob[offset + 26 : offset + 28], "little")
                extra_length = int.from_bytes(blob[offset + 28 : offset + 30], "little")
                if extra_length >= 5:
                    # 30-byte local header + name + 4-byte TLV head, then
                    # the zero padding no checksum but the file hash covers.
                    blob[offset + 30 + name_length + 4] ^= 0xFF
                    sc.write_bytes(bytes(blob))
                    return
            pytest.skip("sidecar has no padded member to corrupt")

        path = _corrupt_copy(v3_artifact, tmp_path, flip_padding_byte)
        assert load_detector(path).is_fitted  # slips past the cheap checks
        with pytest.raises(SerializationError, match="sha256 mismatch"):
            load_detector(path, verify=True)

    def test_stripped_always_on_header_fields_refused(self, v3_artifact, tmp_path):
        """The byte-count / CRC checks never silently degrade to no check."""
        for field, message in (("bytes", "no byte count"), ("crc32", "no member checksums")):

            def strip(js, sc, field=field):
                payload = json.loads(js.read_text())
                del payload["sidecar"][field]
                js.write_text(json.dumps(payload))

            target = tmp_path / field
            target.mkdir()
            path = _corrupt_copy(v3_artifact, target, strip)
            with pytest.raises(SerializationError, match=message):
                load_detector(path)

    def test_unsupported_format_version(self, v3_artifact, tmp_path):
        def bump_version(js, sc):
            payload = json.loads(js.read_text())
            payload["format_version"] = 99
            js.write_text(json.dumps(payload))

        path = _corrupt_copy(v3_artifact, tmp_path, bump_version)
        with pytest.raises(SerializationError, match="unsupported format version"):
            load_detector(path)

    def test_unsupported_sidecar_container(self, v3_artifact, tmp_path):
        def change_container(js, sc):
            payload = json.loads(js.read_text())
            payload["sidecar"]["format"] = "arrow"
            js.write_text(json.dumps(payload))

        path = _corrupt_copy(v3_artifact, tmp_path, change_container)
        with pytest.raises(SerializationError, match="unsupported sidecar format"):
            load_detector(path)

    def test_sidecar_path_escape_rejected(self, v3_artifact, tmp_path):
        def escape_path(js, sc):
            payload = json.loads(js.read_text())
            payload["sidecar"]["path"] = "../detector.npz"
            js.write_text(json.dumps(payload))

        path = _corrupt_copy(v3_artifact, tmp_path, escape_path)
        with pytest.raises(SerializationError, match="invalid sidecar path"):
            load_detector(path)

    def test_missing_sidecar_header(self, v3_artifact, tmp_path):
        def drop_header(js, sc):
            payload = json.loads(js.read_text())
            del payload["sidecar"]
            js.write_text(json.dumps(payload))

        path = _corrupt_copy(v3_artifact, tmp_path, drop_header)
        with pytest.raises(SerializationError, match="no sidecar header"):
            load_detector(path)

    def test_verify_with_stripped_hash_refuses(self, v3_artifact, tmp_path):
        """verify=True must never silently degrade to no check."""

        def strip_hash(js, sc):
            payload = json.loads(js.read_text())
            del payload["sidecar"]["sha256"]
            js.write_text(json.dumps(payload))

        path = _corrupt_copy(v3_artifact, tmp_path, strip_hash)
        assert load_detector(path).is_fitted  # unverified loads still work
        with pytest.raises(SerializationError, match="records no sha256"):
            load_detector(path, verify=True)

    def test_stale_mmap_reference_detected(self, v3_artifact, tmp_path):
        """A pickled shard whose artifact was replaced fails loudly."""
        json_path = _corrupt_copy(v3_artifact, tmp_path, lambda js, sc: None)
        compiled = load_detector(json_path)._compiled
        n_subtrees = len(subtrees_from_compiled(compiled))
        shards = build_shards(compiled, plan_shards(compiled, max(n_subtrees, 1)))
        mapped = [s for s in shards if isinstance(s.codebook, np.memmap)]
        if not mapped:
            pytest.skip("no single-subtree shard to take a reference from")
        payload = pickle.dumps(mapped[0])
        sidecar = tmp_path / "detector.npz"
        sidecar.write_bytes(sidecar.read_bytes() + b"\x00" * 16)  # "new artifact"
        with pytest.raises(SerializationError, match="changed on disk"):
            pickle.loads(payload)

    def test_bare_dict_load_needs_sidecar_dir(self, v3_artifact):
        payload = json.loads(v3_artifact.read_text())
        with pytest.raises(SerializationError, match="sidecar"):
            detector_from_dict(payload)

    def test_sidecar_missing_required_array(self, v3_artifact, tmp_path):
        def drop_member(js, sc):
            from repro.utils.mmapio import load_npz

            arrays = load_npz(sc)
            del arrays["codebook"]
            digest = write_npz_atomic(arrays, sc)
            payload = json.loads(js.read_text())
            payload["sidecar"]["bytes"] = digest["bytes"]
            payload["sidecar"]["sha256"] = digest["sha256"]
            payload["sidecar"]["crc32"] = digest["crc32"]
            js.write_text(json.dumps(payload))

        path = _corrupt_copy(v3_artifact, tmp_path, drop_member)
        with pytest.raises(SerializationError, match="missing compiled arrays"):
            load_detector(path)

    def test_not_a_zip_sidecar(self, v3_artifact, tmp_path):
        def scribble(js, sc):
            blob = bytearray(sc.read_bytes())
            blob[:4] = b"XXXX"  # same size, but no zip structure left
            sc.write_bytes(bytes(blob))

        path = _corrupt_copy(v3_artifact, tmp_path, scribble)
        with pytest.raises(SerializationError, match="npz|zip"):
            load_detector(path)

    def test_json_writers_refuse_v3(self, detectors):
        detector = detectors[("labelled", "per_unit")]
        with pytest.raises(SerializationError, match="binary"):
            detector_to_dict(detector, version=3)
        with pytest.raises(SerializationError, match="binary"):
            ghsom_to_dict(detector.model, version=3)

    def test_object_dtype_array_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="object dtype"):
            write_npz_atomic(
                {"bad": np.array([object()], dtype=object)}, tmp_path / "x.npz"
            )


class TestAtomicSidecarWrites:
    def test_failed_replace_leaves_existing_pair_intact(
        self, detectors, tmp_path, monkeypatch
    ):
        detector = detectors[("labelled", "per_unit")]
        path = tmp_path / "detector.json"
        save_detector(detector, path, format="binary")
        before_json = path.read_bytes()
        before_sidecar = path.with_suffix(".npz").read_bytes()

        def exploding_replace(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            save_detector(detector, path, format="binary")
        monkeypatch.undo()
        # The crash hit the *sidecar* write first: both files of the pair
        # are untouched and no temp files linger.
        assert path.read_bytes() == before_json
        assert path.with_suffix(".npz").read_bytes() == before_sidecar
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "detector.json",
            "detector.npz",
        ]

    def test_fresh_pair_is_loadable_and_modes_preserved(self, detectors, tmp_path):
        detector = detectors[("oneclass", "per_unit")]
        path = tmp_path / "nested" / "detector.json"
        save_detector(detector, path, format="binary")
        assert load_detector(path).is_fitted
        assert (path.stat().st_mode & 0o777) == 0o644
        assert (path.with_suffix(".npz").stat().st_mode & 0o777) == 0o644

    def test_sidecar_written_before_json(self, detectors, tmp_path, monkeypatch):
        """Crash between the two writes leaves a *detectably* stale pair."""
        detector = detectors[("labelled", "global")]
        path = tmp_path / "detector.json"
        save_detector(detector, path, format="binary")
        original = json.loads(path.read_text())

        import repro.core.serialization as serialization_module

        def exploding_json(payload, target):
            raise OSError("crash between sidecar and JSON write")

        monkeypatch.setattr(serialization_module, "write_json_atomic", exploding_json)
        with pytest.raises(OSError):
            save_detector(detector, path, format="binary")
        monkeypatch.undo()
        # Old JSON + rewritten sidecar: identical content here (same
        # detector), so the pair still verifies; the point is the ordering —
        # the JSON's integrity header always describes a sidecar that was
        # fully written first.
        assert json.loads(path.read_text()) == original
        loaded = load_detector(path, verify=True)
        assert loaded.is_fitted
