"""Tests for repro.utils.timer."""

from __future__ import annotations

import time

from repro.utils.timer import Stopwatch, timed


class TestStopwatch:
    def test_measure_accumulates(self):
        watch = Stopwatch()
        with watch.measure("step"):
            time.sleep(0.01)
        with watch.measure("step"):
            time.sleep(0.01)
        assert watch.total("step") >= 0.02
        assert watch.counts["step"] == 2

    def test_unknown_label_is_zero(self):
        watch = Stopwatch()
        assert watch.total("never") == 0.0
        assert watch.mean("never") == 0.0

    def test_mean_divides_by_count(self):
        watch = Stopwatch()
        watch.durations["x"] = 4.0
        watch.counts["x"] = 2
        assert watch.mean("x") == 2.0

    def test_summary_is_a_copy(self):
        watch = Stopwatch()
        with watch.measure("a"):
            pass
        summary = watch.summary()
        summary["a"] = -1.0
        assert watch.total("a") >= 0.0

    def test_exception_inside_measure_still_records(self):
        watch = Stopwatch()
        try:
            with watch.measure("fail"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert watch.counts["fail"] == 1


class TestTimed:
    def test_elapsed_filled_in(self):
        with timed() as elapsed:
            time.sleep(0.01)
        assert elapsed[0] >= 0.01

    def test_elapsed_is_zero_before_exit(self):
        with timed() as elapsed:
            assert elapsed[0] == 0.0
