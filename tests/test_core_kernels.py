"""Engine-equivalence tests for the fused descent kernel.

The fused engine's contract (see :mod:`repro.core.kernels`): for every
supported metric and dtype it lands every sample on the **exact same leaf**
as the numpy frontier descent, with distances matching within the documented
``FUSED_DISTANCE_RTOL``.  The hypothesis suite below exercises that contract
over randomly generated flat-array trees, metrics, dtypes and entry nodes —
the same surface the sharded engine drives via per-shard entry points.

The provider tests prove the degradation story: ``"auto"`` silently resolves
to numpy when no kernel provider exists (no warning spam on import-less
hosts), while an explicit strict ``"fused"`` request fails fast.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.compiled import frontier_descent
from repro.exceptions import ConfigurationError

#: Tree generation is cheap (no GHSOM fit), so the suite affords many more
#: examples than the fit-based property tests.
TREE_SETTINGS = {
    "max_examples": 40,
    "deadline": None,
    "suppress_health_check": [HealthCheck.too_slow, HealthCheck.data_too_large],
}

METRICS = sorted(kernels.FUSED_METRICS)
DTYPES = ("float64", "float32")

fused_missing = not kernels.fused_supported("euclidean", np.float64)
needs_fused = pytest.mark.skipif(
    fused_missing, reason=f"no fused kernel provider: {kernels.provider_diagnostics()}"
)


class TreeOwner:
    """Minimal flat-array tree carrier accepted by the kernel entry points.

    A plain class (not a dataclass/SimpleNamespace) so the kernel-plan cache
    can hold it by weak reference, exactly like ``CompiledGhsom``.
    """

    def __init__(self, codebook, node_offsets, child_of_unit, leaf_of_unit, unit_norms):
        self.codebook = codebook
        self.node_offsets = node_offsets
        self.child_of_unit = child_of_unit
        self.leaf_of_unit = leaf_of_unit
        self.unit_norms = unit_norms


def random_tree(
    rng: np.random.Generator,
    n_features: int,
    dtype: str,
    *,
    max_nodes: int = 14,
    max_units: int = 7,
    child_probability: float = 0.45,
) -> TreeOwner:
    """A random multi-level flat-array hierarchy in the compiled layout.

    Children are always assigned node ids greater than their parent's, so
    every random tree is a well-formed DAG-free descent structure.
    """
    children_of_node = {}
    queue = [0]
    next_node = 1
    while queue:
        node = queue.pop(0)
        n_units = int(rng.integers(1, max_units + 1))
        children = []
        for _ in range(n_units):
            if next_node < max_nodes and rng.random() < child_probability:
                children.append(next_node)
                queue.append(next_node)
                next_node += 1
            else:
                children.append(-1)
        children_of_node[node] = children
    n_nodes = next_node
    counts = [len(children_of_node[node]) for node in range(n_nodes)]
    node_offsets = np.zeros(n_nodes + 1, dtype=np.intp)
    np.cumsum(counts, out=node_offsets[1:])
    child_of_unit = np.concatenate(
        [np.asarray(children_of_node[node], dtype=np.intp) for node in range(n_nodes)]
    )
    leaf_of_unit = np.full(child_of_unit.shape, -1, dtype=np.intp)
    leaf_units = np.flatnonzero(child_of_unit < 0)
    leaf_of_unit[leaf_units] = np.arange(leaf_units.size, dtype=np.intp)
    codebook = np.ascontiguousarray(
        rng.normal(0.0, 1.0, size=(child_of_unit.size, n_features)), dtype=dtype
    )
    unit_norms = np.einsum("ij,ij->i", codebook, codebook)
    return TreeOwner(codebook, node_offsets, child_of_unit, leaf_of_unit, unit_norms)


def descend_both(owner, matrix, entries, metric):
    """(numpy result, fused result) for the same tree/batch/entries."""
    reference = frontier_descent(
        matrix,
        entries,
        codebook=owner.codebook,
        node_offsets=owner.node_offsets,
        child_of_unit=owner.child_of_unit,
        leaf_of_unit=owner.leaf_of_unit,
        unit_norms=owner.unit_norms,
        metric=metric,
    )
    fused = kernels.fused_descent(
        owner, matrix, np.ascontiguousarray(entries, dtype=np.int64), metric=metric
    )
    return reference, fused


@needs_fused
class TestFusedEquivalence:
    @given(data=st.data())
    @settings(**TREE_SETTINGS)
    def test_random_trees_metrics_dtypes_entries(self, data):
        dtype = data.draw(st.sampled_from(DTYPES))
        metric = data.draw(st.sampled_from(METRICS))
        seed = data.draw(st.integers(0, 2**16))
        n_features = data.draw(st.integers(1, 24))
        n_samples = data.draw(st.integers(1, 48))
        rng = np.random.default_rng(seed)
        owner = random_tree(rng, n_features, dtype)
        matrix = np.ascontiguousarray(
            rng.normal(0.0, 1.2, size=(n_samples, n_features)), dtype=dtype
        )
        if data.draw(st.booleans()):
            entries = np.zeros(n_samples, dtype=np.intp)
        else:
            # Arbitrary per-sample entry nodes — the sharded engine's usage.
            n_nodes = owner.node_offsets.size - 1
            entries = rng.integers(0, n_nodes, size=n_samples).astype(np.intp)
        (ref_leaf, ref_dist), (fused_leaf, fused_dist) = descend_both(
            owner, matrix, entries, metric
        )
        np.testing.assert_array_equal(fused_leaf, ref_leaf)
        rtol = kernels.FUSED_DISTANCE_RTOL[dtype]
        np.testing.assert_allclose(fused_dist, ref_dist, rtol=rtol, atol=0.0)
        assert fused_dist.dtype == ref_dist.dtype

    def test_exact_ties_break_to_first_unit(self):
        # Duplicate weight rows force exact distance ties: the fused argmin
        # must pick the lowest unit index, like np.argmin.
        for dtype in DTYPES:
            codebook = np.tile(np.linspace(0.1, 0.9, 5, dtype=dtype), (9, 1))
            owner = TreeOwner(
                codebook=np.ascontiguousarray(codebook),
                node_offsets=np.array([0, 9], dtype=np.intp),
                child_of_unit=np.full(9, -1, dtype=np.intp),
                leaf_of_unit=np.arange(9, dtype=np.intp),
                unit_norms=np.einsum("ij,ij->i", codebook, codebook),
            )
            matrix = np.ascontiguousarray(
                np.tile(np.linspace(0.2, 0.8, 5, dtype=dtype), (4, 1))
            )
            entries = np.zeros(4, dtype=np.intp)
            (ref_leaf, _), (fused_leaf, _) = descend_both(
                owner, matrix, entries, "euclidean"
            )
            np.testing.assert_array_equal(fused_leaf, ref_leaf)
            assert set(np.asarray(fused_leaf).tolist()) == {0}

    def test_single_sample_single_unit(self):
        rng = np.random.default_rng(5)
        for dtype in DTYPES:
            codebook = np.ascontiguousarray(rng.normal(size=(1, 3)), dtype=dtype)
            owner = TreeOwner(
                codebook=codebook,
                node_offsets=np.array([0, 1], dtype=np.intp),
                child_of_unit=np.array([-1], dtype=np.intp),
                leaf_of_unit=np.array([0], dtype=np.intp),
                unit_norms=np.einsum("ij,ij->i", codebook, codebook),
            )
            matrix = np.ascontiguousarray(rng.normal(size=(1, 3)), dtype=dtype)
            (ref_leaf, ref_dist), (fused_leaf, fused_dist) = descend_both(
                owner, matrix, np.zeros(1, dtype=np.intp), "sqeuclidean"
            )
            np.testing.assert_array_equal(fused_leaf, ref_leaf)
            rtol = kernels.FUSED_DISTANCE_RTOL[dtype]
            np.testing.assert_allclose(fused_dist, ref_dist, rtol=rtol, atol=0.0)

    def test_plan_is_cached_per_owner(self):
        rng = np.random.default_rng(11)
        owner = random_tree(rng, 6, "float64")
        assert kernels.fused_plan(owner) is kernels.fused_plan(owner)


@needs_fused
class TestDetectorEngineEquivalence:
    """The engine seam end-to-end: same leaves, bounded drift, numpy default."""

    @pytest.fixture(scope="class")
    def detector(self, fast_config, train_matrix, train_categories):
        from repro.core import GhsomDetector

        detector = GhsomDetector(fast_config, random_state=0)
        detector.fit(train_matrix, train_categories)
        return detector

    def test_assign_arrays_engine_kwarg(self, detector, test_matrix):
        compiled = detector._compiled_model()
        ref_leaf, ref_dist = compiled.assign_arrays(test_matrix, engine="numpy")
        fused_leaf, fused_dist = compiled.assign_arrays(test_matrix, engine="fused")
        np.testing.assert_array_equal(fused_leaf, ref_leaf)
        rtol = kernels.FUSED_DISTANCE_RTOL[str(compiled.dtype)]
        np.testing.assert_allclose(fused_dist, ref_dist, rtol=rtol, atol=0.0)

    def test_default_engine_is_numpy_byte_identity(self, detector, test_matrix):
        compiled = detector._compiled_model()
        default = compiled.assign_arrays(test_matrix)
        explicit = compiled.assign_arrays(test_matrix, engine="numpy")
        np.testing.assert_array_equal(default[0], explicit[0])
        np.testing.assert_array_equal(default[1], explicit[1])

    def test_set_engine_round_trip(self, detector, test_matrix):
        reference = detector.detect(test_matrix)
        try:
            detector.set_engine("fused")
            fused = detector.detect(test_matrix)
        finally:
            detector.set_engine(None)
        np.testing.assert_array_equal(fused.leaf_index, reference.leaf_index)
        np.testing.assert_array_equal(fused.predictions, reference.predictions)
        assert fused.categories == reference.categories

    def test_sharded_fused_leaves_match(self, detector, test_matrix):
        from repro.serving import ShardedGhsom

        compiled = detector._compiled_model()
        reference = compiled.assign_arrays(test_matrix)
        engine = ShardedGhsom.from_compiled(compiled, 2, backend="serial", engine="fused")
        try:
            leaf, dist = engine.assign_arrays(test_matrix)
        finally:
            engine.close()
        np.testing.assert_array_equal(leaf, reference[0])
        rtol = kernels.FUSED_DISTANCE_RTOL[str(compiled.dtype)]
        np.testing.assert_allclose(dist, reference[1], rtol=rtol, atol=0.0)


class TestEngineResolution:
    def test_engine_names_validated(self):
        with pytest.raises(ConfigurationError):
            kernels.check_engine("gpu")
        with pytest.raises(ConfigurationError):
            kernels.set_default_engine("fastest")

    def test_default_engine_is_numpy(self):
        assert kernels.get_default_engine() == "numpy"

    def test_auto_degrades_to_numpy_without_provider_and_without_warnings(self):
        kernels.set_fused_provider("none")
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                for _ in range(3):  # repeated resolution must stay silent too
                    resolved = kernels.resolve_engine(
                        "auto", metric="euclidean", dtype=np.float64
                    )
                    assert resolved == "numpy"
        finally:
            kernels.set_fused_provider(None)

    def test_strict_fused_fails_fast_without_provider(self):
        kernels.set_fused_provider("none")
        try:
            with pytest.raises(ConfigurationError):
                kernels.resolve_engine(
                    "fused", metric="euclidean", dtype=np.float64, strict=True
                )
        finally:
            kernels.set_fused_provider(None)

    def test_nonstrict_fused_degrades_in_shard_paths(self):
        # Shards resolve non-strictly: a worker without a provider serves
        # numpy instead of failing the batch.
        kernels.set_fused_provider("none")
        try:
            resolved = kernels.resolve_engine(
                "fused", metric="euclidean", dtype=np.float64
            )
            assert resolved == "numpy"
        finally:
            kernels.set_fused_provider(None)

    def test_unsupported_metric_resolves_numpy(self):
        # "auto" on a metric no kernel serves is a silent numpy descent.
        assert (
            kernels.resolve_engine("auto", metric="cosine", dtype=np.float64)
            == "numpy"
        )

    def test_detector_rejects_bad_engine_name(self, fast_config):
        from repro.core import GhsomDetector

        with pytest.raises(ConfigurationError):
            GhsomDetector(fast_config, engine="warp")

    def test_strict_set_engine_on_fitted_detector_without_provider(
        self, fast_config, train_matrix, train_categories
    ):
        from repro.core import GhsomDetector

        detector = GhsomDetector(fast_config, random_state=0)
        detector.fit(train_matrix, train_categories)
        kernels.set_fused_provider("none")
        try:
            with pytest.raises(ConfigurationError):
                detector.set_engine("fused")
            # "auto" stays permissive: configuring it succeeds and serves.
            detector.set_engine("auto")
            detector.score_samples(train_matrix[:8])
        finally:
            kernels.set_fused_provider(None)
            detector.set_engine(None)
