"""Shared fixtures for the test suite.

The fixtures deliberately use small datasets and fast GHSOM configurations
(few epochs, small map-size caps) so the whole suite stays quick while still
exercising the real code paths.  Session scope is used for the expensive
fixtures (dataset generation, fitted detectors) because they are read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GhsomConfig, SomTrainingConfig
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A seeded generator shared by tests that need raw randomness."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def generator() -> KddSyntheticGenerator:
    """A seeded synthetic dataset generator for ad-hoc use inside tests."""
    return KddSyntheticGenerator(random_state=7)


@pytest.fixture(scope="session")
def small_dataset():
    """A mixed-traffic dataset of 600 records (own generator: independent of test order)."""
    return KddSyntheticGenerator(random_state=11).generate(600)


@pytest.fixture(scope="session")
def small_split():
    """A (train, test) pair of mixed-traffic datasets (own generator: independent of test order)."""
    return KddSyntheticGenerator(random_state=12).generate_train_test(900, 450)


@pytest.fixture(scope="session")
def fitted_pipeline(small_split):
    """A preprocessing pipeline fitted on the training split."""
    train, _ = small_split
    pipeline = PreprocessingPipeline()
    pipeline.fit(train)
    return pipeline


@pytest.fixture(scope="session")
def train_matrix(small_split, fitted_pipeline):
    """Encoded training matrix."""
    train, _ = small_split
    return fitted_pipeline.transform(train)


@pytest.fixture(scope="session")
def test_matrix(small_split, fitted_pipeline):
    """Encoded test matrix."""
    _, test = small_split
    return fitted_pipeline.transform(test)


@pytest.fixture(scope="session")
def train_categories(small_split):
    """Training categories as a list of strings."""
    train, _ = small_split
    return [str(category) for category in train.categories]


@pytest.fixture(scope="session")
def test_binary_truth(small_split):
    """Binary ground truth (1 = attack) for the test split."""
    _, test = small_split
    return test.is_attack.astype(int)


@pytest.fixture(scope="session")
def fast_config() -> GhsomConfig:
    """A GHSOM configuration small and fast enough for unit tests."""
    return GhsomConfig(
        tau1=0.4,
        tau2=0.1,
        max_depth=2,
        max_map_size=36,
        max_growth_rounds=10,
        min_samples_for_expansion=25,
        training=SomTrainingConfig(epochs=3),
        random_state=0,
    )


@pytest.fixture(scope="session")
def blob_data(rng) -> np.ndarray:
    """Three well-separated Gaussian blobs in 4 dimensions (for SOM-level tests)."""
    centers = np.array(
        [
            [0.1, 0.1, 0.1, 0.1],
            [0.9, 0.9, 0.9, 0.9],
            [0.1, 0.9, 0.1, 0.9],
        ]
    )
    blobs = [center + rng.normal(0.0, 0.03, size=(80, 4)) for center in centers]
    return np.clip(np.concatenate(blobs, axis=0), 0.0, 1.0)
