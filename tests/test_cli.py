"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, load_bundle, main, save_bundle
from repro.core import GhsomConfig, GhsomDetector, SomTrainingConfig
from repro.data.loader import load_csv, save_csv
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator


@pytest.fixture(scope="module")
def data_dir(tmp_path_factory):
    """Small train/test CSV files shared by the CLI tests."""
    directory = tmp_path_factory.mktemp("cli_data")
    generator = KddSyntheticGenerator(random_state=3)
    train, test = generator.generate_train_test(700, 300)
    save_csv(train, directory / "train.csv")
    save_csv(test, directory / "test.csv")
    return directory


@pytest.fixture(scope="module")
def trained_model_path(data_dir, tmp_path_factory):
    """A model bundle produced through the CLI train command."""
    model_path = tmp_path_factory.mktemp("cli_model") / "model.json"
    exit_code = main(
        [
            "train",
            "--train", str(data_dir / "train.csv"),
            "--model", str(model_path),
            "--max-map-size", "49",
            "--max-depth", "2",
            "--epochs", "3",
            "--min-expansion", "40",
        ]
    )
    assert exit_code == 0
    return model_path


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("generate", "simulate", "train", "detect", "evaluate", "inspect"):
            assert command in text

    def test_missing_command_raises_system_exit(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestGenerateAndSimulate:
    def test_generate_writes_loadable_csv(self, tmp_path, capsys):
        output = tmp_path / "generated.csv"
        assert main(["generate", "--records", "200", "--output", str(output), "--seed", "1"]) == 0
        dataset = load_csv(output)
        assert len(dataset) == 200
        assert "wrote 200 records" in capsys.readouterr().out

    def test_generate_normal_only(self, tmp_path):
        output = tmp_path / "normal.csv"
        assert main(["generate", "--records", "150", "--normal-only", "--output", str(output)]) == 0
        assert not load_csv(output).is_attack.any()

    def test_simulate_with_attacks(self, tmp_path, capsys):
        output = tmp_path / "trace.csv"
        code = main(
            [
                "simulate",
                "--duration", "60",
                "--rate", "2.0",
                "--attack", "portsweep:20",
                "--attack", "neptune:40",
                "--output", str(output),
                "--seed", "2",
            ]
        )
        assert code == 0
        dataset = load_csv(output)
        counts = dataset.class_counts()
        assert counts.get("probe", 0) > 0 and counts.get("dos", 0) > 0

    def test_simulate_bad_attack_spec_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["simulate", "--duration", "30", "--attack", "neptune", "--output", str(tmp_path / "x.csv")]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestTrainDetectInspect:
    def test_bundle_round_trip(self, trained_model_path, data_dir):
        pipeline, detector = load_bundle(trained_model_path)
        test = load_csv(data_dir / "test.csv")
        predictions = detector.predict(pipeline.transform(test))
        assert predictions.shape == (len(test),)

    def test_bundle_matches_in_process_training(self, data_dir, tmp_path):
        """The CLI bundle must behave identically to a pipeline+detector built in process."""
        train = load_csv(data_dir / "train.csv")
        test = load_csv(data_dir / "test.csv")
        pipeline = PreprocessingPipeline()
        X_train = pipeline.fit_transform(train)
        detector = GhsomDetector(
            GhsomConfig(
                tau1=0.3, tau2=0.05, max_depth=2, max_map_size=49,
                min_samples_for_expansion=40, training=SomTrainingConfig(epochs=3), random_state=0,
            ),
            random_state=0,
        )
        detector.fit(X_train, [str(category) for category in train.categories])
        bundle_path = tmp_path / "bundle.json"
        save_bundle(pipeline, detector, bundle_path)
        reloaded_pipeline, reloaded_detector = load_bundle(bundle_path)
        np.testing.assert_allclose(
            reloaded_pipeline.transform(test), pipeline.transform(test)
        )
        np.testing.assert_array_equal(
            reloaded_detector.predict(reloaded_pipeline.transform(test)),
            detector.predict(pipeline.transform(test)),
        )

    def test_train_binary_format_writes_pair_and_detects(self, data_dir, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        code = main(
            [
                "train",
                "--train", str(data_dir / "train.csv"),
                "--model", str(model_path),
                "--format", "binary",
                "--max-map-size", "49",
                "--max-depth", "2",
                "--epochs", "3",
                "--min-expansion", "40",
            ]
        )
        assert code == 0
        assert "binary array sidecar" in capsys.readouterr().out
        sidecar = tmp_path / "model.npz"
        assert sidecar.exists()
        # detect and inspect auto-detect the format from the JSON header.
        assert main(["detect", "--model", str(model_path), "--input", str(data_dir / "test.csv")]) == 0
        assert main(["inspect", "--model", str(model_path)]) == 0

    def test_binary_bundle_scores_identical_to_json_bundle(self, data_dir, tmp_path):
        args = [
            "--train", str(data_dir / "train.csv"),
            "--max-map-size", "49", "--max-depth", "2",
            "--epochs", "3", "--min-expansion", "40",
        ]
        json_path = tmp_path / "json" / "model.json"
        binary_path = tmp_path / "binary" / "model.json"
        assert main(["train", *args, "--model", str(json_path)]) == 0
        assert main(["train", *args, "--model", str(binary_path), "--format", "binary"]) == 0
        test = load_csv(data_dir / "test.csv")
        pipeline_j, detector_j = load_bundle(json_path)
        pipeline_b, detector_b = load_bundle(binary_path, verify=True)
        result_j = detector_j.detect(pipeline_j.transform(test))
        result_b = detector_b.detect(pipeline_b.transform(test))
        np.testing.assert_array_equal(result_b.scores, result_j.scores)
        assert list(result_b.categories) == list(result_j.categories)

    def test_detect_missing_sidecar_fails_cleanly(self, data_dir, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        assert main(
            [
                "train",
                "--train", str(data_dir / "train.csv"),
                "--model", str(model_path),
                "--format", "binary",
                "--max-map-size", "49", "--max-depth", "2",
                "--epochs", "3", "--min-expansion", "40",
            ]
        ) == 0
        (tmp_path / "model.npz").unlink()
        capsys.readouterr()
        code = main(["detect", "--model", str(model_path), "--input", str(data_dir / "test.csv")])
        assert code == 2
        err = capsys.readouterr().err
        assert "missing binary sidecar" in err

    def test_detect_prints_metrics_and_writes_output(self, trained_model_path, data_dir, tmp_path, capsys):
        output = tmp_path / "alarms.csv"
        code = main(
            [
                "detect",
                "--model", str(trained_model_path),
                "--input", str(data_dir / "test.csv"),
                "--output", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "alarms" in out
        assert "detection_rate" in out
        lines = output.read_text().strip().splitlines()
        assert lines[0] == "record_index,alarm,score,predicted_category"
        assert len(lines) == len(load_csv(data_dir / "test.csv")) + 1

    def test_assume_unlabeled_suppresses_metrics_on_labelled_input(
        self, trained_model_path, data_dir, capsys
    ):
        """--assume-unlabeled must win even when the input contains attack labels."""
        code = main(
            [
                "detect",
                "--model", str(trained_model_path),
                "--input", str(data_dir / "test.csv"),
                "--assume-unlabeled",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scored" in out
        assert "detection_rate" not in out

    def test_all_normal_input_prints_no_metrics_table(
        self, trained_model_path, tmp_path, capsys
    ):
        """Inputs without attack labels have nothing to compute quality against."""
        normal_csv = tmp_path / "normal.csv"
        assert main(
            ["generate", "--records", "120", "--normal-only", "--output", str(normal_csv)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["detect", "--model", str(trained_model_path), "--input", str(normal_csv)]
        ) == 0
        out = capsys.readouterr().out
        assert "scored" in out
        assert "detection_rate" not in out

    def test_empty_input_fails_cleanly(self, trained_model_path, data_dir, tmp_path, capsys):
        """A header-only CSV must produce a clean error, not a ZeroDivisionError."""
        empty_csv = tmp_path / "empty.csv"
        header = (data_dir / "test.csv").read_text().splitlines()[0]
        empty_csv.write_text(header + "\n")
        code = main(
            ["detect", "--model", str(trained_model_path), "--input", str(empty_csv)]
        )
        assert code == 2
        assert "no records" in capsys.readouterr().err

    def test_detect_runs_exactly_one_assignment_pass(
        self, trained_model_path, data_dir, monkeypatch, capsys
    ):
        """The serving path must descend the tree once per invocation, not thrice."""
        from repro.core.compiled import CompiledGhsom

        calls = []
        original = CompiledGhsom.assign_arrays

        def counting(self, data, **kwargs):
            calls.append(len(np.asarray(data)))
            return original(self, data, **kwargs)

        monkeypatch.setattr(CompiledGhsom, "assign_arrays", counting)
        assert main(
            ["detect", "--model", str(trained_model_path), "--input", str(data_dir / "test.csv")]
        ) == 0
        assert len(calls) == 1

    def test_detect_float32_mode(self, trained_model_path, data_dir, tmp_path, capsys):
        output = tmp_path / "alarms32.csv"
        code = main(
            [
                "detect",
                "--model", str(trained_model_path),
                "--input", str(data_dir / "test.csv"),
                "--float32",
                "--output", str(output),
            ]
        )
        assert code == 0
        assert len(output.read_text().strip().splitlines()) == len(
            load_csv(data_dir / "test.csv")
        ) + 1

    def test_inspect_prints_topology(self, trained_model_path, capsys):
        assert main(["inspect", "--model", str(trained_model_path)]) == 0
        out = capsys.readouterr().out
        assert "Model topology" in out
        assert "root" in out
        assert "Leaf label distribution" in out

    def test_one_class_training(self, data_dir, tmp_path):
        model_path = tmp_path / "oneclass.json"
        code = main(
            [
                "train",
                "--train", str(data_dir / "train.csv"),
                "--model", str(model_path),
                "--one-class",
                "--max-map-size", "36",
                "--max-depth", "2",
                "--epochs", "2",
            ]
        )
        assert code == 0
        _, detector = load_bundle(model_path)
        assert not detector.is_labeled


class TestEvaluate:
    def test_evaluate_writes_reports(self, data_dir, tmp_path, capsys):
        json_path = tmp_path / "results.json"
        report_path = tmp_path / "report.md"
        code = main(
            [
                "evaluate",
                "--train", str(data_dir / "train.csv"),
                "--test", str(data_dir / "test.csv"),
                "--detectors", "kmeans,pca",
                "--json", str(json_path),
                "--report", str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Evaluation results" in out
        payload = json.loads(json_path.read_text())
        assert set(payload["results"]) == {"kmeans", "pca"}
        assert "Overall comparison" in report_path.read_text()

    def test_unknown_detector_fails_cleanly(self, data_dir, capsys):
        code = main(
            [
                "evaluate",
                "--train", str(data_dir / "train.csv"),
                "--test", str(data_dir / "test.csv"),
                "--detectors", "quantum_forest",
            ]
        )
        assert code == 2
        assert "unknown detector" in capsys.readouterr().err
