"""Tests for repro.data.features (feature analysis and selection)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.features import (
    correlation_matrix,
    drop_highly_correlated,
    feature_entropy,
    select_by_variance,
    select_top_k_by_entropy,
    summarize_features,
)
from repro.exceptions import DataValidationError


class TestSelectByVariance:
    def test_constant_columns_dropped(self):
        data = np.column_stack([np.ones(50), np.arange(50, dtype=float)])
        kept = select_by_variance(data)
        np.testing.assert_array_equal(kept, [1])

    def test_all_informative_columns_kept(self, rng):
        data = rng.random((100, 5))
        assert select_by_variance(data).size == 5


class TestFeatureEntropy:
    def test_constant_column_has_zero_entropy(self):
        data = np.column_stack([np.ones(100), np.random.default_rng(0).random(100)])
        entropies = feature_entropy(data)
        assert entropies[0] == 0.0
        assert entropies[1] > 0.0

    def test_uniform_has_higher_entropy_than_concentrated(self, rng):
        uniform_column = rng.random(2000)
        concentrated = np.concatenate([np.zeros(1900), rng.random(100)])
        data = np.column_stack([uniform_column, concentrated])
        entropies = feature_entropy(data)
        assert entropies[0] > entropies[1]

    def test_entropy_bounded_by_log_bins(self, rng):
        data = rng.random((500, 3))
        entropies = feature_entropy(data, n_bins=8)
        assert np.all(entropies <= np.log2(8) + 1e-9)


class TestSelectTopK:
    def test_k_columns_returned_sorted(self, rng):
        data = rng.random((200, 6))
        selected = select_top_k_by_entropy(data, 3)
        assert selected.size == 3
        assert np.all(np.diff(selected) > 0)

    def test_k_larger_than_columns_is_clamped(self, rng):
        data = rng.random((50, 4))
        assert select_top_k_by_entropy(data, 10).size == 4

    def test_non_positive_k_rejected(self, rng):
        with pytest.raises(DataValidationError):
            select_top_k_by_entropy(rng.random((10, 3)), 0)


class TestCorrelation:
    def test_identical_columns_fully_correlated(self, rng):
        column = rng.random(100)
        data = np.column_stack([column, column, rng.random(100)])
        correlation = correlation_matrix(data)
        assert correlation[0, 1] == pytest.approx(1.0)
        assert abs(correlation[0, 2]) < 0.5

    def test_diagonal_is_one(self, rng):
        correlation = correlation_matrix(rng.random((50, 4)))
        np.testing.assert_allclose(np.diag(correlation), 1.0)

    def test_constant_column_has_zero_offdiagonal(self, rng):
        data = np.column_stack([np.ones(50), rng.random(50)])
        correlation = correlation_matrix(data)
        assert correlation[0, 1] == 0.0

    def test_drop_highly_correlated_removes_duplicates(self, rng):
        column = rng.random(100)
        data = np.column_stack([column, column * 2.0 + 1e-9, rng.random(100)])
        kept = drop_highly_correlated(data, threshold=0.99)
        assert 0 in kept
        assert 1 not in kept
        assert 2 in kept


class TestSummarizeFeatures:
    def test_summary_rows_match_columns(self, rng):
        data = rng.random((60, 3))
        summary = summarize_features(data, ["a", "b", "c"])
        assert len(summary) == 3
        assert summary[0][0] == "a"

    def test_name_count_mismatch_rejected(self, rng):
        with pytest.raises(DataValidationError):
            summarize_features(rng.random((10, 3)), ["a", "b"])
