"""Tests for repro.core.growing_som (horizontal growth)."""

from __future__ import annotations

import pytest

from repro.core.config import GhsomConfig, SomTrainingConfig
from repro.core.growing_som import GrowingSom
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError


def _config(**overrides):
    base = {
        "tau1": 0.4,
        "tau2": 0.1,
        "max_depth": 2,
        "max_map_size": 36,
        "max_growth_rounds": 12,
        "training": SomTrainingConfig(epochs=3),
        "random_state": 0,
    }
    base.update(overrides)
    return GhsomConfig(**base)


class TestConstruction:
    def test_starts_at_initial_shape(self):
        layer = GrowingSom(n_features=4, config=_config(), random_state=0)
        assert layer.grid.shape == (2, 2)
        assert layer.n_units == 4

    def test_invalid_parent_qe_rejected(self):
        with pytest.raises(ConfigurationError):
            GrowingSom(n_features=4, config=_config(), parent_qe=-1.0)

    def test_invalid_feature_count_rejected(self):
        with pytest.raises(ConfigurationError):
            GrowingSom(n_features=0, config=_config())

    def test_mqe_target_follows_tau1(self):
        layer = GrowingSom(n_features=4, config=_config(tau1=0.5), parent_qe=2.0)
        assert layer.mqe_target == pytest.approx(1.0)


class TestGrowth:
    def test_grows_beyond_initial_size_on_structured_data(self, blob_data):
        from repro.core.quantization import dataset_quantization_error

        qe0 = dataset_quantization_error(blob_data)
        layer = GrowingSom(
            n_features=4, config=_config(tau1=0.05), parent_qe=qe0, random_state=0
        )
        layer.fit(blob_data)
        assert layer.n_units > 4

    def test_small_tau1_grows_larger_maps(self, blob_data):
        from repro.core.quantization import dataset_quantization_error

        qe0 = dataset_quantization_error(blob_data)
        loose = GrowingSom(n_features=4, config=_config(tau1=0.9), parent_qe=qe0, random_state=0)
        tight = GrowingSom(n_features=4, config=_config(tau1=0.03), parent_qe=qe0, random_state=0)
        loose.fit(blob_data)
        tight.fit(blob_data)
        assert tight.n_units > loose.n_units

    def test_respects_max_map_size(self, blob_data):
        layer = GrowingSom(
            n_features=4,
            config=_config(tau1=0.01, max_map_size=12, max_growth_rounds=50),
            parent_qe=0.05,
            random_state=0,
        )
        layer.fit(blob_data)
        assert layer.n_units <= 12

    def test_respects_max_growth_rounds(self, blob_data):
        layer = GrowingSom(
            n_features=4,
            config=_config(tau1=0.001, max_growth_rounds=2, max_map_size=400),
            parent_qe=1.0,
            random_state=0,
        )
        layer.fit(blob_data)
        # 2 growth rounds starting from 2x2 can add at most 2 rows/columns.
        assert layer.n_units <= 4 + 3 + 4  # 2x2 -> 3x2 (or 2x3) -> at most 3x3/4x2

    def test_high_parent_qe_means_no_growth(self, blob_data):
        """When the target is already met by the initial map, no insertion happens."""
        layer = GrowingSom(
            n_features=4, config=_config(tau1=1.0), parent_qe=100.0, random_state=0
        )
        layer.fit(blob_data)
        assert layer.n_units == 4
        assert len(layer.growth_history) == 1
        assert layer.growth_history[0].inserted == "none"

    def test_growth_history_is_consistent(self, blob_data):
        from repro.core.quantization import dataset_quantization_error

        qe0 = dataset_quantization_error(blob_data)
        layer = GrowingSom(n_features=4, config=_config(tau1=0.05), parent_qe=qe0, random_state=0)
        layer.fit(blob_data)
        history = layer.growth_history
        assert history[-1].inserted == "none"
        # Unit counts never decrease and match rows*cols at every step.
        for event in history:
            assert event.n_units == event.rows * event.cols
        unit_counts = [event.n_units for event in history]
        assert all(b >= a for a, b in zip(unit_counts, unit_counts[1:], strict=False))

    def test_mqe_decreases_as_map_grows(self, blob_data):
        from repro.core.quantization import dataset_quantization_error

        qe0 = dataset_quantization_error(blob_data)
        layer = GrowingSom(n_features=4, config=_config(tau1=0.05), parent_qe=qe0, random_state=0)
        layer.fit(blob_data)
        mqes = [event.mqe for event in layer.growth_history]
        if len(mqes) >= 3:
            assert mqes[-1] < mqes[0]

    def test_wrong_dimensionality_rejected(self, blob_data):
        layer = GrowingSom(n_features=7, config=_config())
        with pytest.raises(DataValidationError):
            layer.fit(blob_data)


class TestInference:
    def test_unfitted_layer_raises(self, blob_data):
        layer = GrowingSom(n_features=4, config=_config())
        with pytest.raises(NotFittedError):
            layer.transform(blob_data)

    def test_transform_and_distances_shapes(self, blob_data):
        layer = GrowingSom(n_features=4, config=_config(), parent_qe=1.0, random_state=0)
        layer.fit(blob_data)
        units = layer.transform(blob_data)
        distances = layer.quantization_distances(blob_data)
        assert units.shape == distances.shape == (blob_data.shape[0],)
        assert units.max() < layer.n_units

    def test_unit_counts_sum(self, blob_data):
        layer = GrowingSom(n_features=4, config=_config(), parent_qe=1.0, random_state=0)
        layer.fit(blob_data)
        assert layer.unit_counts(blob_data).sum() == blob_data.shape[0]

    def test_codebook_weights_stay_in_data_range(self, blob_data):
        layer = GrowingSom(n_features=4, config=_config(tau1=0.2), parent_qe=0.2, random_state=0)
        layer.fit(blob_data)
        assert layer.codebook.min() >= blob_data.min() - 0.1
        assert layer.codebook.max() <= blob_data.max() + 0.1
