"""Tests for repro.core.quantization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.grid import MapGrid
from repro.core.quantization import (
    average_sample_error,
    dataset_quantization_error,
    mean_quantization_error,
    topographic_error,
    unit_quantization_errors,
)


class TestDatasetQuantizationError:
    def test_zero_for_identical_rows(self):
        data = np.tile([1.0, 2.0, 3.0], (10, 1))
        assert dataset_quantization_error(data) == pytest.approx(0.0)

    def test_matches_mean_distance_to_centroid(self, rng):
        data = rng.random((50, 4))
        centroid = data.mean(axis=0)
        expected = np.linalg.norm(data - centroid, axis=1).mean()
        assert dataset_quantization_error(data) == pytest.approx(expected)

    def test_scales_with_spread(self, rng):
        tight = rng.normal(0.0, 0.1, size=(100, 3))
        wide = rng.normal(0.0, 1.0, size=(100, 3))
        assert dataset_quantization_error(wide) > dataset_quantization_error(tight)


class TestUnitQuantizationErrors:
    def test_perfect_codebook_gives_zero_errors(self):
        codebook = np.array([[0.0, 0.0], [1.0, 1.0]])
        data = np.array([[0.0, 0.0], [1.0, 1.0], [1.0, 1.0]])
        errors = unit_quantization_errors(data, codebook)
        np.testing.assert_allclose(errors, 0.0, atol=1e-12)

    def test_empty_units_have_zero_error(self):
        codebook = np.array([[0.0, 0.0], [100.0, 100.0]])
        data = np.array([[0.1, 0.0], [0.0, 0.1]])
        errors = unit_quantization_errors(data, codebook)
        assert errors[1] == 0.0
        assert errors[0] > 0.0

    def test_sum_reduction_weights_population(self):
        codebook = np.array([[0.0, 0.0]])
        data = np.array([[1.0, 0.0], [1.0, 0.0]])
        mean_error = unit_quantization_errors(data, codebook, reduction="mean")
        sum_error = unit_quantization_errors(data, codebook, reduction="sum")
        assert sum_error[0] == pytest.approx(2.0 * mean_error[0])

    def test_invalid_reduction_rejected(self):
        with pytest.raises(ValueError):
            unit_quantization_errors(np.ones((2, 2)), np.ones((1, 2)), reduction="median")

    def test_precomputed_assignments_respected(self):
        codebook = np.array([[0.0, 0.0], [10.0, 10.0]])
        data = np.array([[0.0, 1.0]])
        forced = unit_quantization_errors(data, codebook, assignments=np.array([1]))
        assert forced[1] > 0.0 and forced[0] == 0.0


class TestMapLevelErrors:
    def test_mqe_is_mean_over_populated_units(self):
        codebook = np.array([[0.0, 0.0], [5.0, 5.0], [100.0, 100.0]])
        data = np.array([[1.0, 0.0], [5.0, 6.0]])
        expected = (1.0 + 1.0) / 2.0
        assert mean_quantization_error(data, codebook) == pytest.approx(expected)

    def test_average_sample_error_leq_dataset_error(self, rng):
        """A trained-looking codebook of many units beats the single centroid."""
        data = rng.random((100, 3))
        codebook = data[rng.choice(100, 10, replace=False)]
        assert average_sample_error(data, codebook) <= dataset_quantization_error(data) + 1e-9


class TestTopographicError:
    def test_single_unit_map_has_zero_error(self, rng):
        grid = MapGrid(1, 1)
        assert topographic_error(rng.random((10, 2)), rng.random((1, 2)), grid) == 0.0

    def test_error_within_bounds(self, rng):
        grid = MapGrid(3, 3)
        error = topographic_error(rng.random((50, 4)), rng.random((9, 4)), grid)
        assert 0.0 <= error <= 1.0

    def test_ordered_codebook_preserves_topology(self):
        """A codebook laid out exactly along the grid gives zero topographic error."""
        grid = MapGrid(1, 5)
        codebook = np.linspace(0.0, 1.0, 5).reshape(-1, 1)
        data = np.linspace(0.05, 0.95, 20).reshape(-1, 1)
        assert topographic_error(data, codebook, grid) == 0.0

    def test_shuffled_codebook_breaks_topology(self, rng):
        grid = MapGrid(1, 6)
        ordered = np.linspace(0.0, 1.0, 6).reshape(-1, 1)
        shuffled = ordered[[3, 0, 5, 1, 4, 2]]
        data = rng.random((200, 1))
        assert topographic_error(data, shuffled, grid) > topographic_error(data, ordered, grid)
