"""Tests for repro.streaming.alerts (incident aggregation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.streaming.alerts import AlertAggregator, Incident


class TestAlertAggregatorBasics:
    def test_no_alarms_means_no_incidents(self):
        aggregator = AlertAggregator()
        assert aggregator.aggregate([1.0, 2.0, 3.0], [0, 0, 0]) == []

    def test_single_burst_becomes_one_incident(self):
        times = [10.0, 11.0, 12.0, 13.0, 500.0]
        alarms = [1, 1, 1, 1, 0]
        incidents = AlertAggregator(gap_seconds=5.0, min_records=2).aggregate(times, alarms)
        assert len(incidents) == 1
        incident = incidents[0]
        assert incident.start_time == 10.0
        assert incident.end_time == 13.0
        assert incident.n_records == 4
        assert incident.duration == pytest.approx(3.0)

    def test_gap_splits_incidents(self):
        times = [0.0, 1.0, 2.0, 100.0, 101.0, 102.0]
        alarms = [1] * 6
        incidents = AlertAggregator(gap_seconds=10.0, min_records=2).aggregate(times, alarms)
        assert len(incidents) == 2
        assert incidents[0].end_time < incidents[1].start_time

    def test_min_records_filters_noise(self):
        times = [0.0, 50.0, 100.0, 101.0, 102.0, 103.0]
        alarms = [1, 1, 1, 1, 1, 1]
        incidents = AlertAggregator(gap_seconds=5.0, min_records=3).aggregate(times, alarms)
        # The two isolated alarms at 0 and 50 are dropped; the burst survives.
        assert len(incidents) == 1
        assert incidents[0].n_records == 4

    def test_unsorted_input_handled(self):
        times = [12.0, 10.0, 11.0]
        alarms = [1, 1, 1]
        incidents = AlertAggregator(gap_seconds=5.0, min_records=2).aggregate(times, alarms)
        assert len(incidents) == 1
        assert incidents[0].start_time == 10.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DataValidationError):
            AlertAggregator().aggregate([1.0, 2.0], [1])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            AlertAggregator(gap_seconds=0.0)
        with pytest.raises(ConfigurationError):
            AlertAggregator(min_records=0)


class TestCategoriesAndScores:
    def test_dominant_category_and_counts(self):
        times = [0.0, 1.0, 2.0, 3.0]
        alarms = [1, 1, 1, 1]
        categories = ["dos", "dos", "dos", "dos"]
        incidents = AlertAggregator(gap_seconds=5.0, min_records=2).aggregate(
            times, alarms, categories=categories
        )
        assert incidents[0].dominant_category == "dos"
        assert incidents[0].category_counts == {"dos": 4}

    def test_category_change_splits_incident(self):
        times = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        alarms = [1] * 6
        categories = ["dos", "dos", "dos", "probe", "probe", "probe"]
        incidents = AlertAggregator(gap_seconds=10.0, min_records=2).aggregate(
            times, alarms, categories=categories
        )
        assert len(incidents) == 2
        assert {incident.dominant_category for incident in incidents} == {"dos", "probe"}

    def test_category_split_can_be_disabled(self):
        times = [0.0, 1.0, 2.0, 3.0]
        alarms = [1] * 4
        categories = ["dos", "probe", "dos", "probe"]
        incidents = AlertAggregator(
            gap_seconds=10.0, min_records=2, split_by_category=False
        ).aggregate(times, alarms, categories=categories)
        assert len(incidents) == 1
        assert incidents[0].category_counts == {"dos": 2, "probe": 2}

    def test_peak_score_recorded(self):
        times = [0.0, 1.0, 2.0]
        alarms = [1, 1, 1]
        scores = [1.5, 4.0, 2.0]
        incidents = AlertAggregator(gap_seconds=5.0, min_records=2).aggregate(
            times, alarms, scores=scores
        )
        assert incidents[0].peak_score == pytest.approx(4.0)

    def test_as_row_matches_headers(self):
        incident = Incident(0, 1.0, 2.0, 5, "dos", {"dos": 5}, 3.0)
        assert len(incident.as_row()) == len(Incident.headers())


class TestSummary:
    def test_empty_summary(self):
        assert AlertAggregator().summarize([]) == {
            "n_incidents": 0,
            "n_alarmed_records": 0,
            "n_residual_records": 0,
            "n_residual_groups": 0,
        }

    def test_summary_fields(self):
        incidents = [
            Incident(0, 0.0, 10.0, 20, "dos", {"dos": 20}, 5.0),
            Incident(1, 100.0, 102.0, 4, "probe", {"probe": 4}, 2.0),
        ]
        summary = AlertAggregator().summarize(incidents)
        assert summary["n_incidents"] == 2
        assert summary["n_alarmed_records"] == 24
        assert summary["categories"] == {"dos": 1, "probe": 1}
        assert summary["longest_duration"] == pytest.approx(10.0)
        assert summary["largest_incident"] == 20

    def test_end_to_end_with_detector(self, rng):
        """Incident aggregation on a realistic alarm stream from the traffic simulator."""
        from repro.core.config import GhsomConfig, SomTrainingConfig
        from repro.core.detector import GhsomDetector
        from repro.data.preprocess import PreprocessingPipeline
        from repro.netsim import AttackInjection, NetworkModel, TrafficSimulator

        network = NetworkModel(random_state=5)
        calibration = TrafficSimulator(
            duration_seconds=300.0, sessions_per_second=3.0, network=network, random_state=5
        ).run()
        pipeline = PreprocessingPipeline().fit(calibration)
        detector = GhsomDetector(
            GhsomConfig(tau1=0.3, tau2=0.1, max_depth=2, max_map_size=64,
                        training=SomTrainingConfig(epochs=5), random_state=0),
            random_state=0,
        ).fit(pipeline.transform(calibration))
        simulator = TrafficSimulator(
            duration_seconds=150.0,
            sessions_per_second=3.0,
            network=network,
            injections=[AttackInjection("neptune", 60.0)],
            random_state=6,
        )
        dataset, events = simulator.run_with_events()
        alarms = detector.predict(pipeline.transform(dataset))
        timestamps = np.array([event.timestamp for event in events])
        truth = dataset.is_attack.astype(int)
        # The SYN flood itself must be caught almost completely ...
        assert alarms[truth == 1].mean() > 0.9
        incidents = AlertAggregator(gap_seconds=10.0, min_records=5).aggregate(timestamps, alarms)
        assert incidents, "the injected SYN flood must produce at least one incident"
        # ... and some incident must cover the injection window (the flood runs 60-80s).
        covering = [
            incident
            for incident in incidents
            if incident.start_time <= 80.0 and incident.end_time >= 62.0
        ]
        assert covering
        assert max(incident.n_records for incident in covering) > 50


class TestResidualNoise:
    """Sub-``min_records`` groups are counted, never silently discarded."""

    def test_dropped_groups_counted_and_surfaced(self):
        aggregator = AlertAggregator(gap_seconds=5.0, min_records=3)
        # One real burst of three, then two isolated alarms far apart: the
        # burst becomes an incident, the stragglers become residual noise.
        incidents = aggregator.aggregate(
            [0.0, 1.0, 2.0, 100.0, 200.0], [1, 1, 1, 1, 1]
        )
        assert len(incidents) == 1
        assert aggregator.n_residual_records == 2
        assert aggregator.n_residual_groups == 2
        summary = aggregator.summarize(incidents)
        assert summary["n_residual_records"] == 2
        assert summary["n_residual_groups"] == 2
        # Conservation: every alarmed record is either in an incident or
        # reported as residual — the docstring's no-silent-drop promise.
        assert summary["n_alarmed_records"] + summary["n_residual_records"] == 5

    def test_all_noise_still_reported_with_zero_incidents(self):
        aggregator = AlertAggregator(gap_seconds=5.0, min_records=3)
        incidents = aggregator.aggregate([0.0, 50.0, 100.0], [1, 1, 1])
        assert incidents == []
        summary = aggregator.summarize(incidents)
        assert summary["n_incidents"] == 0
        assert summary["n_residual_records"] == 3
        assert summary["n_residual_groups"] == 3

    def test_residual_counters_reset_per_aggregate_call(self):
        aggregator = AlertAggregator(gap_seconds=5.0, min_records=3)
        aggregator.aggregate([0.0, 100.0], [1, 1])
        assert aggregator.n_residual_records == 2
        # A later call with no residual noise must not inherit the counts.
        aggregator.aggregate([0.0, 1.0, 2.0], [1, 1, 1])
        assert aggregator.n_residual_records == 0
        assert aggregator.n_residual_groups == 0

    def test_mixed_groups_count_only_sparse_ones(self):
        aggregator = AlertAggregator(gap_seconds=5.0, min_records=2)
        incidents = aggregator.aggregate(
            [0.0, 1.0, 50.0, 100.0, 101.0], [1, 1, 1, 1, 1]
        )
        assert len(incidents) == 2
        assert aggregator.n_residual_records == 1
        assert aggregator.n_residual_groups == 1
