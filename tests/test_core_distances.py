"""Tests for repro.core.distances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distances import (
    available_metrics,
    best_matching_units,
    chebyshev,
    euclidean,
    get_metric,
    manhattan,
    squared_euclidean,
)
from repro.exceptions import ConfigurationError


class TestSquaredEuclidean:
    def test_matches_naive_computation(self, rng):
        samples = rng.random((7, 5))
        codebook = rng.random((4, 5))
        expected = ((samples[:, None, :] - codebook[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(squared_euclidean(samples, codebook), expected, atol=1e-10)

    def test_zero_distance_to_self(self, rng):
        points = rng.random((5, 3))
        distances = squared_euclidean(points, points)
        np.testing.assert_allclose(np.diag(distances), 0.0, atol=1e-10)

    def test_never_negative(self, rng):
        samples = rng.random((50, 8)) * 1e-6
        assert squared_euclidean(samples, samples).min() >= 0.0

    def test_1d_inputs_promoted(self):
        distances = squared_euclidean(np.array([1.0, 0.0]), np.array([0.0, 0.0]))
        assert distances.shape == (1, 1)
        np.testing.assert_allclose(distances, [[1.0]])


class TestOtherMetrics:
    def test_euclidean_is_sqrt_of_squared(self, rng):
        samples, codebook = rng.random((6, 4)), rng.random((3, 4))
        np.testing.assert_allclose(
            euclidean(samples, codebook) ** 2, squared_euclidean(samples, codebook), atol=1e-10
        )

    def test_manhattan_known_value(self):
        np.testing.assert_allclose(
            manhattan(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]])), [[3.0]]
        )

    def test_chebyshev_known_value(self):
        np.testing.assert_allclose(
            chebyshev(np.array([[1.0, -4.0]]), np.array([[0.0, 0.0]])), [[4.0]]
        )

    def test_metric_ordering(self, rng):
        """For any pair: chebyshev <= euclidean <= manhattan."""
        samples, codebook = rng.random((10, 6)), rng.random((5, 6))
        cheb = chebyshev(samples, codebook)
        eucl = euclidean(samples, codebook)
        manh = manhattan(samples, codebook)
        assert np.all(cheb <= eucl + 1e-12)
        assert np.all(eucl <= manh + 1e-12)


class TestChunkedBroadcastKernels:
    """The L1/Linf kernels compute in bounded-memory chunks (identical values)."""

    def test_manhattan_chunked_matches_one_shot(self, rng, monkeypatch):
        from repro.core import distances as distances_module

        samples, codebook = rng.random((23, 5)), rng.random((4, 5))
        expected = manhattan(samples, codebook)
        # Force many tiny chunks (budget of one (u, d) block => 1 row at a time).
        monkeypatch.setattr(distances_module, "_BROADCAST_BUDGET_ELEMENTS", 20)
        np.testing.assert_array_equal(manhattan(samples, codebook), expected)

    def test_chebyshev_chunked_matches_one_shot(self, rng, monkeypatch):
        from repro.core import distances as distances_module

        samples, codebook = rng.random((17, 6)), rng.random((3, 6))
        expected = chebyshev(samples, codebook)
        monkeypatch.setattr(distances_module, "_BROADCAST_BUDGET_ELEMENTS", 18)
        np.testing.assert_array_equal(chebyshev(samples, codebook), expected)

    def test_chunk_boundary_exact_division(self, rng, monkeypatch):
        from repro.core import distances as distances_module

        # 8 samples, chunk of exactly 4 rows: boundary at an even division.
        samples, codebook = rng.random((8, 2)), rng.random((2, 2))
        expected = manhattan(samples, codebook)
        monkeypatch.setattr(distances_module, "_BROADCAST_BUDGET_ELEMENTS", 4 * 2 * 2)
        np.testing.assert_array_equal(manhattan(samples, codebook), expected)

    def test_1d_inputs_still_promoted(self, monkeypatch):
        from repro.core import distances as distances_module

        monkeypatch.setattr(distances_module, "_BROADCAST_BUDGET_ELEMENTS", 1)
        result = manhattan(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        np.testing.assert_allclose(result, [[3.0]])


class TestRegistry:
    def test_all_metrics_listed(self):
        assert set(available_metrics()) == {"euclidean", "sqeuclidean", "manhattan", "chebyshev"}

    def test_lookup_returns_callable(self):
        assert callable(get_metric("manhattan"))

    def test_unknown_metric_raises(self):
        with pytest.raises(ConfigurationError):
            get_metric("cosine")


class TestBestMatchingUnits:
    def test_bmu_picks_nearest(self):
        codebook = np.array([[0.0, 0.0], [1.0, 1.0]])
        samples = np.array([[0.1, 0.1], [0.9, 0.8]])
        np.testing.assert_array_equal(best_matching_units(samples, codebook), [0, 1])

    def test_bmu_identical_for_euclidean_variants(self, rng):
        samples, codebook = rng.random((30, 4)), rng.random((9, 4))
        np.testing.assert_array_equal(
            best_matching_units(samples, codebook, "euclidean"),
            best_matching_units(samples, codebook, "sqeuclidean"),
        )
