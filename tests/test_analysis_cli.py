"""Tests for the ``repro-lint`` command line (``python -m repro.analysis``)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import LINT_VERSION, build_parser, main, rule_registry
from repro.analysis.rules import RULES


@pytest.fixture()
def bad_tree(tmp_path):
    """A tiny fake repo with one violation (pickle outside transport)."""
    package = tmp_path / "src" / "repro" / "serving"
    package.mkdir(parents=True)
    (package / "custom.py").write_text(
        "import pickle\n\n\ndef decode(body):\n    return pickle.loads(body)\n"
    )
    return tmp_path


def test_clean_path_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("VALUE = 1\n")
    assert main([str(tmp_path)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_violation_exits_one_with_human_output(bad_tree, capsys):
    assert main([str(bad_tree)]) == 1
    out = capsys.readouterr().out
    assert "RPL002" in out
    assert "custom.py" in out
    assert "1 finding(s)" in out


def test_json_format_is_machine_readable(bad_tree, capsys):
    assert main([str(bad_tree), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == LINT_VERSION
    assert payload["rules"] == [rule.code for rule in RULES]
    (finding,) = payload["findings"]
    assert finding["code"] == "RPL002"
    assert finding["path"].endswith("custom.py")
    assert finding["line"] == 5


def test_json_format_with_clean_tree(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("VALUE = 1\n")
    assert main([str(tmp_path), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []


def test_list_rules_renders_registry(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule.code in out
        assert rule.name in out


def test_list_rules_json(capsys):
    assert main(["--list-rules", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["rules"] == rule_registry()
    assert len(payload["rules"]) >= 8


def test_missing_path_is_a_usage_error(capsys):
    assert main(["does/not/exist"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_no_paths_is_a_parser_error():
    with pytest.raises(SystemExit):
        main([])


def test_syntax_error_reported_as_lint_error(tmp_path, capsys):
    (tmp_path / "broken.py").write_text("def broken(:\n")
    assert main([str(tmp_path)]) == 2
    assert "could not parse" in capsys.readouterr().err


def test_version_flag_mentions_rule_count():
    parser = build_parser()
    with pytest.raises(SystemExit) as excinfo:
        parser.parse_args(["--version"])
    assert excinfo.value.code == 0


def test_select_restricts_rules_and_json_rules_key(bad_tree, capsys):
    # RPL002 deselected: the pickle violation disappears and the JSON
    # payload names exactly the selected family.
    assert main([str(bad_tree), "--select", "RPL009,RPL010", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["rules"] == ["RPL009", "RPL010"]
    assert payload["findings"] == []


def test_select_unknown_code_is_a_parser_error(bad_tree):
    with pytest.raises(SystemExit):
        main([str(bad_tree), "--select", "RPL999"])


def test_report_unused_suppressions_flag(tmp_path, capsys):
    package = tmp_path / "src" / "repro" / "serving"
    package.mkdir(parents=True)
    (package / "custom.py").write_text(
        "def decode(body):\n"
        "    return body  # repro-lint: disable=RPL002 -- stale\n"
    )
    assert main([str(tmp_path)]) == 0
    capsys.readouterr()
    assert main([str(tmp_path), "--report-unused-suppressions"]) == 1
    out = capsys.readouterr().out
    assert "RPL000" in out
    assert "disable=RPL002" in out


def _git(workdir, *args):
    import subprocess

    subprocess.run(
        ["git", *args],
        cwd=workdir,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(workdir),
            "PATH": __import__("os").environ["PATH"],
        },
    )


def test_changed_mode_lints_only_modified_files(tmp_path, monkeypatch, capsys):
    _git(tmp_path, "init", "-q")
    clean = tmp_path / "committed.py"
    clean.write_text("VALUE = 1\n")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")
    dirty = tmp_path / "src" / "repro" / "serving" / "custom.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text(
        "import pickle\n\n\ndef decode(body):\n    return pickle.loads(body)\n"
    )
    monkeypatch.chdir(tmp_path)
    assert main(["--changed"]) == 1
    out = capsys.readouterr().out
    assert "custom.py" in out
    assert "RPL002" in out


def test_changed_mode_with_clean_tree_exits_zero(tmp_path, monkeypatch, capsys):
    _git(tmp_path, "init", "-q")
    monkeypatch.chdir(tmp_path)
    assert main(["--changed"]) == 0
    assert "no changed python files" in capsys.readouterr().out


def test_changed_mode_rejects_explicit_paths(tmp_path):
    with pytest.raises(SystemExit):
        main(["--changed", str(tmp_path)])
