"""Tests for the Local Outlier Factor baseline detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.lof import LofDetector
from repro.eval.metrics import roc_auc
from repro.exceptions import ConfigurationError, NotFittedError


class TestLofCore:
    def test_detects_isolated_points(self, rng):
        cluster = rng.normal(0.0, 0.05, size=(300, 3))
        detector = LofDetector(n_neighbors=10, percentile=97.0, random_state=0).fit(cluster)
        outliers = np.array([[1.0, 1.0, 1.0], [-1.0, 0.5, 2.0]])
        scores = detector.score_samples(outliers)
        assert np.all(scores > 1.0)

    def test_inliers_score_around_threshold_or_below(self, rng):
        cluster = rng.normal(0.0, 0.05, size=(400, 3))
        detector = LofDetector(n_neighbors=10, percentile=99.0, random_state=0).fit(cluster)
        fresh = rng.normal(0.0, 0.05, size=(200, 3))
        assert detector.predict(fresh).mean() < 0.1

    def test_local_density_awareness(self, rng):
        """A point at the edge of a sparse cluster is less anomalous than the same
        offset from a dense cluster — the property that distinguishes LOF from k-NN."""
        dense = rng.normal(0.0, 0.01, size=(200, 2))
        sparse = rng.normal(5.0, 0.5, size=(200, 2))
        detector = LofDetector(n_neighbors=15, random_state=0).fit(np.vstack([dense, sparse]))
        near_dense = np.array([[0.15, 0.0]])   # 15 sigma away from the dense cluster
        near_sparse = np.array([[5.0 + 0.75, 5.0]])  # 1.5 sigma away from the sparse cluster
        score_dense = detector.score_samples(near_dense)[0]
        score_sparse = detector.score_samples(near_sparse)[0]
        assert score_dense > score_sparse

    def test_detection_on_kdd_traffic(self, train_matrix, train_categories, test_matrix, test_binary_truth):
        detector = LofDetector(n_neighbors=15, max_reference_size=800, random_state=0)
        detector.fit(train_matrix, train_categories)
        scores = detector.score_samples(test_matrix)
        assert roc_auc(test_binary_truth, scores) > 0.85

    def test_reference_subsampling(self, train_matrix):
        detector = LofDetector(max_reference_size=100, random_state=0).fit(train_matrix)
        assert detector._reference.shape[0] == 100

    def test_chunked_scoring_matches_unchunked(self, train_matrix, test_matrix):
        one = LofDetector(chunk_size=10_000, max_reference_size=500, random_state=0).fit(train_matrix)
        two = LofDetector(chunk_size=13, max_reference_size=500, random_state=0).fit(train_matrix)
        np.testing.assert_allclose(
            one.score_samples(test_matrix[:80]), two.score_samples(test_matrix[:80])
        )

    def test_unfitted_raises(self, test_matrix):
        with pytest.raises(NotFittedError):
            LofDetector().predict(test_matrix)

    def test_wrong_dimensionality_rejected(self, train_matrix):
        detector = LofDetector(max_reference_size=200, random_state=0).fit(train_matrix)
        with pytest.raises(ConfigurationError):
            detector.score_samples(np.zeros((2, train_matrix.shape[1] + 1)))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            LofDetector(n_neighbors=0)
        with pytest.raises(ConfigurationError):
            LofDetector(max_reference_size=1)
        with pytest.raises(ConfigurationError):
            LofDetector(percentile=0.0)
        with pytest.raises(ConfigurationError):
            LofDetector(chunk_size=0)

    def test_predict_category_fallback(self, train_matrix, test_matrix):
        detector = LofDetector(max_reference_size=300, random_state=0).fit(train_matrix)
        categories = detector.predict_category(test_matrix[:20])
        assert set(categories).issubset({"normal", "anomaly"})
