"""Tests for repro.core.labeling (unit labelling)."""

from __future__ import annotations

import pytest

from repro.core.labeling import UNLABELED, LeafLabel, UnitLabeler
from repro.exceptions import ConfigurationError, NotFittedError


class TestUnitLabelerBasics:
    def test_majority_vote(self):
        labeler = UnitLabeler()
        keys = [("root", 0)] * 3 + [("root", 1)] * 2
        labels = ["normal", "normal", "dos", "dos", "dos"]
        labeler.fit(keys, labels)
        assert labeler.label_of(("root", 0)) == "normal"
        assert labeler.label_of(("root", 1)) == "dos"

    def test_unknown_leaf_is_unlabeled(self):
        labeler = UnitLabeler().fit([("root", 0)], ["normal"])
        assert labeler.label_of(("root", 99)) == UNLABELED
        assert labeler.info_of(("root", 99)).count == 0

    def test_purity_recorded(self):
        labeler = UnitLabeler().fit([("root", 0)] * 4, ["normal", "normal", "normal", "dos"])
        info = labeler.info_of(("root", 0))
        assert info.purity == pytest.approx(0.75)
        assert info.count == 4

    def test_predict_batch(self):
        labeler = UnitLabeler().fit([("root", 0), ("root", 1)], ["normal", "probe"])
        assert labeler.predict([("root", 1), ("root", 0), ("root", 5)]) == [
            "probe",
            "normal",
            UNLABELED,
        ]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            UnitLabeler().fit([("root", 0)], ["normal", "dos"])

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            UnitLabeler().label_of(("root", 0))
        with pytest.raises(NotFittedError):
            UnitLabeler().class_distribution()

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            UnitLabeler(strategy="weighted_median")

    def test_invalid_min_purity_rejected(self):
        with pytest.raises(ConfigurationError):
            UnitLabeler(min_purity=0.0)

    def test_min_count_leaves_sparse_units_unlabeled(self):
        labeler = UnitLabeler(min_count=3).fit([("root", 0)] * 2, ["dos", "dos"])
        assert labeler.label_of(("root", 0)) == UNLABELED


class TestPurityStrategy:
    def test_mixed_unit_prefers_attack_label(self):
        """Under the purity strategy a 50/50 normal/dos unit is labelled dos."""
        labeler = UnitLabeler(strategy="purity", min_purity=0.8)
        keys = [("root", 0)] * 4
        labels = ["normal", "normal", "dos", "dos"]
        labeler.fit(keys, labels)
        assert labeler.label_of(("root", 0)) == "dos"

    def test_pure_unit_keeps_majority_label(self):
        labeler = UnitLabeler(strategy="purity", min_purity=0.7)
        labeler.fit([("root", 0)] * 4, ["normal"] * 4)
        assert labeler.label_of(("root", 0)) == "normal"

    def test_mixed_all_normal_variants_keeps_majority(self):
        """A unit mixing only normal with itself has nothing to escalate to."""
        labeler = UnitLabeler(strategy="purity", min_purity=0.9)
        labeler.fit([("root", 0)] * 3, ["normal", "normal", "normal"])
        assert labeler.label_of(("root", 0)) == "normal"


class TestDistributionAndSerialization:
    def test_class_distribution_counts_leaves(self):
        labeler = UnitLabeler().fit(
            [("root", 0), ("root", 1), ("root/1", 0)], ["normal", "dos", "dos"]
        )
        distribution = labeler.class_distribution()
        assert distribution == {"normal": 1, "dos": 2}

    def test_labeled_leaves_returns_copy(self):
        labeler = UnitLabeler().fit([("root", 0)], ["normal"])
        leaves = labeler.labeled_leaves()
        leaves[("root", 0)] = LeafLabel("dos", 1, 1.0)
        assert labeler.label_of(("root", 0)) == "normal"

    def test_round_trip_dict(self):
        labeler = UnitLabeler(strategy="purity", min_purity=0.6, min_count=2).fit(
            [("root", 0)] * 3 + [("root/2", 1)] * 2, ["dos", "dos", "normal", "probe", "probe"]
        )
        rebuilt = UnitLabeler.from_dict(labeler.to_dict())
        assert rebuilt.label_of(("root", 0)) == labeler.label_of(("root", 0))
        assert rebuilt.label_of(("root/2", 1)) == "probe"
        assert rebuilt.strategy == "purity"

    def test_leaf_label_reliability_flag(self):
        assert LeafLabel("dos", 10, 0.9).is_reliable
        assert not LeafLabel("dos", 0, 0.0).is_reliable
        assert not LeafLabel("dos", 10, 0.4).is_reliable
