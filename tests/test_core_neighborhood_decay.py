"""Tests for repro.core.neighborhood and repro.core.decay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decay import (
    available_decays,
    constant_decay,
    exponential_decay,
    get_decay,
    inverse_decay,
    linear_decay,
)
from repro.core.neighborhood import (
    available_neighborhoods,
    bubble_neighborhood,
    gaussian_neighborhood,
    get_neighborhood,
    mexican_hat_neighborhood,
)
from repro.exceptions import ConfigurationError


class TestGaussianNeighborhood:
    def test_peak_at_zero_distance(self):
        distances = np.array([0.0, 1.0, 2.0])
        influence = gaussian_neighborhood(distances, radius=1.0)
        assert influence[0] == pytest.approx(1.0)
        assert np.all(np.diff(influence) < 0)

    def test_larger_radius_spreads_influence(self):
        distances = np.array([2.0])
        assert gaussian_neighborhood(distances, 3.0) > gaussian_neighborhood(distances, 1.0)

    def test_zero_radius_does_not_blow_up(self):
        influence = gaussian_neighborhood(np.array([0.0, 1.0]), radius=0.0)
        assert np.isfinite(influence).all()
        assert influence[0] == pytest.approx(1.0)


class TestBubbleNeighborhood:
    def test_hard_cutoff(self):
        distances = np.array([0.0, 1.0, 1.5, 2.0])
        np.testing.assert_allclose(bubble_neighborhood(distances, 1.0), [1.0, 1.0, 0.0, 0.0])

    def test_values_are_binary(self, rng):
        influence = bubble_neighborhood(rng.random(50) * 5, 2.0)
        assert set(np.unique(influence)).issubset({0.0, 1.0})


class TestMexicanHat:
    def test_centre_positive_surround_negative(self):
        influence = mexican_hat_neighborhood(np.array([0.0, 2.0]), radius=1.0)
        assert influence[0] == pytest.approx(1.0)
        assert influence[1] < 0.0


class TestNeighborhoodRegistry:
    def test_names(self):
        assert set(available_neighborhoods()) == {"gaussian", "bubble", "mexican_hat"}

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_neighborhood("donut")


class TestDecays:
    @pytest.mark.parametrize("schedule", [linear_decay, exponential_decay, inverse_decay])
    def test_monotone_decreasing(self, schedule):
        values = [schedule(progress) for progress in np.linspace(0.0, 1.0, 11)]
        assert all(later <= earlier + 1e-12 for earlier, later in zip(values, values[1:], strict=False))

    @pytest.mark.parametrize(
        "schedule", [linear_decay, exponential_decay, inverse_decay, constant_decay]
    )
    def test_starts_at_one_and_stays_positive(self, schedule):
        assert schedule(0.0) == pytest.approx(1.0)
        assert schedule(1.0) > 0.0

    def test_progress_is_clipped(self):
        assert linear_decay(2.0) == linear_decay(1.0)
        assert exponential_decay(-1.0) == pytest.approx(1.0)

    def test_constant_decay_never_changes(self):
        assert constant_decay(0.3) == constant_decay(0.9) == 1.0

    def test_registry(self):
        assert set(available_decays()) == {"linear", "exponential", "inverse", "constant"}
        with pytest.raises(ConfigurationError):
            get_decay("cosine_annealing")
