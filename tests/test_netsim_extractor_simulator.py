"""Tests for repro.netsim.extractor and repro.netsim.simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.netsim.attacks import PortScanAttack, SynFloodAttack
from repro.netsim.events import ConnectionEvent
from repro.netsim.extractor import KddFeatureExtractor
from repro.netsim.hosts import NetworkModel
from repro.netsim.simulator import ATTACK_REGISTRY, AttackInjection, TrafficSimulator


def _event(timestamp, dst_ip="10.0.1.1", service="http", flag="SF", src_ip="10.0.0.1", src_port=40000):
    return ConnectionEvent(
        timestamp=timestamp,
        duration=0.1,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=80,
        protocol="tcp",
        service=service,
        flag=flag,
        src_bytes=100,
        dst_bytes=200,
    )


class TestKddFeatureExtractor:
    def test_empty_stream_rejected(self):
        with pytest.raises(SimulationError):
            KddFeatureExtractor().extract([])

    def test_dataset_shape_and_labels(self):
        events = [_event(float(index)) for index in range(10)]
        dataset = KddFeatureExtractor().extract(events)
        assert len(dataset) == 10
        assert dataset.schema.n_features == 41
        assert set(map(str, dataset.labels)) == {"normal"}

    def test_count_feature_reflects_time_window(self):
        """Three connections to the same host within 2 s: the last one sees count=2."""
        events = [_event(0.0), _event(0.5), _event(1.0)]
        dataset = KddFeatureExtractor(time_window_seconds=2.0).extract(events)
        counts = dataset.column("count").astype(float)
        np.testing.assert_allclose(counts, [0.0, 1.0, 2.0])

    def test_count_resets_outside_window(self):
        events = [_event(0.0), _event(10.0)]
        dataset = KddFeatureExtractor(time_window_seconds=2.0).extract(events)
        assert dataset.column("count").astype(float)[1] == 0.0

    def test_serror_rate_from_syn_errors(self):
        events = [_event(0.0, flag="S0"), _event(0.5, flag="S0"), _event(1.0)]
        dataset = KddFeatureExtractor().extract(events)
        serror = dataset.column("serror_rate").astype(float)
        assert serror[2] == pytest.approx(1.0)

    def test_diff_srv_rate_for_scanning_behaviour(self):
        events = [
            _event(0.0, service="http"),
            _event(0.2, service="smtp"),
            _event(0.4, service="ftp"),
            _event(0.6, service="telnet"),
        ]
        dataset = KddFeatureExtractor().extract(events)
        diff_srv = dataset.column("diff_srv_rate").astype(float)
        assert diff_srv[3] == pytest.approx(1.0)

    def test_dst_host_count_accumulates(self):
        events = [_event(float(index) * 10.0) for index in range(5)]
        dataset = KddFeatureExtractor().extract(events)
        dst_host_count = dataset.column("dst_host_count").astype(float)
        np.testing.assert_allclose(dst_host_count, [0.0, 1.0, 2.0, 3.0, 4.0])

    def test_dst_host_window_is_bounded(self):
        events = [_event(float(index)) for index in range(30)]
        dataset = KddFeatureExtractor(host_window_size=10).extract(events)
        assert dataset.column("dst_host_count").astype(float).max() <= 10.0

    def test_same_src_port_rate(self):
        events = [_event(0.0, src_port=1234), _event(10.0, src_port=1234), _event(20.0, src_port=9999)]
        dataset = KddFeatureExtractor().extract(events)
        rate = dataset.column("dst_host_same_src_port_rate").astype(float)
        assert rate[1] == pytest.approx(1.0)
        assert rate[2] == pytest.approx(0.0)

    def test_content_features_copied(self):
        event = _event(0.0)
        event.content["num_failed_logins"] = 3.0
        dataset = KddFeatureExtractor().extract([event])
        assert dataset.column("num_failed_logins").astype(float)[0] == 3.0

    def test_events_are_sorted_by_extractor(self):
        events = [_event(5.0), _event(1.0), _event(3.0)]
        dataset = KddFeatureExtractor().extract(events)
        # After sorting, the last record (t=5) sees the two earlier ones in its host window.
        assert dataset.column("dst_host_count").astype(float).max() == 2.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            KddFeatureExtractor(time_window_seconds=0.0)
        with pytest.raises(SimulationError):
            KddFeatureExtractor(host_window_size=0)

    def test_syn_flood_produces_high_counts_and_serror(self):
        network = NetworkModel(random_state=0)
        events = SynFloodAttack(network, n_connections=300, duration_seconds=5.0, random_state=0).generate()
        dataset = KddFeatureExtractor().extract(events)
        assert dataset.column("count").astype(float).max() > 50
        assert dataset.column("serror_rate").astype(float)[len(dataset) // 2 :].mean() > 0.9

    def test_port_scan_produces_reject_rates(self):
        network = NetworkModel(random_state=0)
        events = PortScanAttack(network, n_ports=100, random_state=0).generate()
        dataset = KddFeatureExtractor().extract(events)
        assert dataset.column("dst_host_rerror_rate").astype(float)[-1] > 0.5


class TestTrafficSimulator:
    def test_run_produces_labelled_dataset(self):
        simulator = TrafficSimulator(
            duration_seconds=60.0,
            sessions_per_second=2.0,
            injections=[AttackInjection("portsweep", 20.0)],
            random_state=0,
        )
        dataset = simulator.run()
        counts = dataset.class_counts()
        assert counts.get("probe", 0) > 0
        assert counts.get("normal", 0) > 0

    def test_registry_names_resolve(self):
        network = NetworkModel(random_state=0)
        for name in ATTACK_REGISTRY:
            generator = AttackInjection(name, 0.0).resolve(network, 0)
            assert generator.label == name

    def test_unknown_attack_name_rejected(self):
        network = NetworkModel(random_state=0)
        with pytest.raises(SimulationError):
            AttackInjection("slowloris", 0.0).resolve(network, 0)

    def test_injection_outside_trace_rejected(self):
        simulator = TrafficSimulator(duration_seconds=10.0, random_state=0)
        with pytest.raises(SimulationError):
            simulator.add_injection("neptune", 20.0)

    def test_add_injection_and_instance_attacks(self):
        network = NetworkModel(random_state=0)
        simulator = TrafficSimulator(duration_seconds=30.0, network=network, random_state=0)
        simulator.add_injection(SynFloodAttack(network, n_connections=50, random_state=1), 5.0)
        dataset = simulator.run()
        assert dataset.class_counts().get("dos", 0) >= 50

    def test_run_with_events_returns_both(self):
        simulator = TrafficSimulator(duration_seconds=20.0, random_state=0)
        dataset, events = simulator.run_with_events()
        assert len(dataset) == len(events)

    def test_reproducible_with_seed(self):
        first = TrafficSimulator(duration_seconds=30.0, random_state=4).run()
        second = TrafficSimulator(duration_seconds=30.0, random_state=4).run()
        assert list(map(str, first.labels)) == list(map(str, second.labels))

    def test_invalid_duration_rejected(self):
        with pytest.raises(SimulationError):
            TrafficSimulator(duration_seconds=0.0)

    def test_events_sorted_in_time(self):
        simulator = TrafficSimulator(
            duration_seconds=40.0,
            injections=[AttackInjection("smurf", 10.0)],
            random_state=0,
        )
        events = simulator.simulate_events()
        times = [event.timestamp for event in events]
        assert times == sorted(times)
