"""Tests for repro.data.synthetic (the KDD-style generator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.schema import KddSchema
from repro.data.synthetic import (
    ClassProfile,
    KddSyntheticGenerator,
    NumericSpec,
    bernoulli,
    beta,
    constant,
    default_profiles,
    lognormal,
    normal,
    poisson,
    uniform,
)
from repro.exceptions import ConfigurationError, DataValidationError


class TestNumericSpec:
    def test_constant_sampling(self, rng):
        values = constant(3.5).sample(rng, 10)
        assert np.all(values == 3.5)

    def test_uniform_bounds(self, rng):
        values = uniform(1.0, 2.0).sample(rng, 500)
        assert values.min() >= 1.0 and values.max() <= 2.0

    def test_bernoulli_is_binary(self, rng):
        values = bernoulli(0.5).sample(rng, 200)
        assert set(np.unique(values)).issubset({0.0, 1.0})

    def test_beta_in_unit_interval(self, rng):
        values = beta(2.0, 5.0).sample(rng, 200)
        assert values.min() >= 0.0 and values.max() <= 1.0

    def test_poisson_nonnegative_integers(self, rng):
        values = poisson(3.0).sample(rng, 200)
        assert np.all(values >= 0)
        np.testing.assert_allclose(values, np.round(values))

    def test_lognormal_positive(self, rng):
        assert np.all(lognormal(1.0, 1.0).sample(rng, 100) > 0)

    def test_normal_mean_close(self, rng):
        values = normal(10.0, 0.1).sample(rng, 500)
        assert abs(values.mean() - 10.0) < 0.1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            NumericSpec("cauchy", (0.0, 1.0))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ConfigurationError):
            NumericSpec("uniform", (1.0,))


class TestClassProfile:
    def test_unknown_numeric_feature_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassProfile(label="x", numeric={"not_a_feature": constant(1.0)})

    def test_categorical_feature_in_numeric_slot_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassProfile(label="x", numeric={"service": constant(1.0)})

    def test_bad_categorical_value_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassProfile(label="x", categorical={"protocol_type": {"quic": 1.0}})

    def test_sample_shape_and_schema_conformance(self, rng):
        schema = KddSchema()
        profile = default_profiles()["normal"]
        rows = profile.sample(rng, 50, schema)
        assert rows.shape == (50, schema.n_features)
        for row in rows:
            schema.validate_row(list(row))

    def test_rate_features_stay_in_unit_interval(self, rng):
        schema = KddSchema()
        profile = default_profiles()["neptune"]
        rows = profile.sample(rng, 200, schema)
        column = schema.index_of("serror_rate")
        values = rows[:, column].astype(float)
        assert values.min() >= 0.0 and values.max() <= 1.0


class TestDefaultProfiles:
    def test_all_categories_covered(self):
        generator = KddSyntheticGenerator(random_state=0)
        categories = generator.categories_present()
        for category in ("normal", "dos", "probe", "r2l", "u2r"):
            assert category in categories and categories[category]

    def test_profiles_have_unique_labels(self):
        profiles = default_profiles()
        assert len(profiles) == len(set(profiles))


class TestKddSyntheticGenerator:
    def test_generate_count_and_schema(self, generator):
        dataset = generator.generate(123)
        assert len(dataset) == 123
        assert dataset.schema.n_features == 41

    def test_generate_is_reproducible(self):
        first = KddSyntheticGenerator(random_state=5).generate(200)
        second = KddSyntheticGenerator(random_state=5).generate(200)
        assert list(first.labels) == list(second.labels)
        np.testing.assert_array_equal(
            first.numeric_matrix(), second.numeric_matrix()
        )

    def test_class_mix_is_respected(self):
        generator = KddSyntheticGenerator(random_state=0)
        dataset = generator.generate(500, class_mix={"normal": 0.5, "smurf": 0.5})
        counts = dataset.class_counts(by_category=False)
        assert set(counts) == {"normal", "smurf"}
        assert abs(counts["normal"] - 250) < 80

    def test_generate_class_single_label(self, generator):
        dataset = generator.generate_class("neptune", 50)
        assert set(map(str, dataset.labels)) == {"neptune"}

    def test_generate_normal_has_no_attacks(self, generator):
        dataset = generator.generate_normal(100)
        assert not dataset.is_attack.any()

    def test_generate_train_test_sizes(self, generator):
        train, test = generator.generate_train_test(200, 100)
        assert len(train) == 200 and len(test) == 100

    def test_unknown_profile_in_mix_rejected(self, generator):
        with pytest.raises(ConfigurationError):
            generator.generate(10, class_mix={"martian_probe": 1.0})

    def test_unknown_class_for_generate_class_rejected(self, generator):
        with pytest.raises(ConfigurationError):
            generator.generate_class("martian_probe", 10)

    def test_non_positive_count_rejected(self, generator):
        with pytest.raises(DataValidationError):
            generator.generate(0)

    def test_attack_volume_features_separate_from_normal(self, generator):
        """DoS floods must show far higher connection counts than normal traffic."""
        normal = generator.generate_class("normal", 300)
        smurf = generator.generate_class("smurf", 300)
        normal_count = normal.column("count").astype(float).mean()
        smurf_count = smurf.column("count").astype(float).mean()
        assert smurf_count > 10 * normal_count

    def test_r2l_resembles_normal_on_volume(self, generator):
        """R2L traffic should overlap with normal on volume features (what makes it hard)."""
        normal = generator.generate_class("normal", 300)
        guess = generator.generate_class("guess_passwd", 300)
        normal_count = normal.column("count").astype(float).mean()
        guess_count = guess.column("count").astype(float).mean()
        assert guess_count < 3 * max(normal_count, 1.0)

    def test_custom_profiles_only(self):
        profiles = {"normal": default_profiles()["normal"]}
        generator = KddSyntheticGenerator(profiles=profiles, random_state=0)
        dataset = generator.generate(50)
        assert set(map(str, dataset.labels)) == {"normal"}

    def test_empty_profiles_rejected(self):
        with pytest.raises(ConfigurationError):
            KddSyntheticGenerator(profiles={})
