"""Integration tests of the unified ServingConfig layer across the stack.

What these tests pin down, layer by layer:

* the detector's single mutation path (``configure``) is atomic and the
  legacy setters are order-independent shims over it;
* every legacy serving keyword and setter emits one DeprecationWarning that
  names ServingConfig, with behaviour unchanged;
* a configured detector's ServingConfig is embedded in v2/v3 artifacts and
  survives save → load → refit with byte-identical scores;
* ``DetectionResult.stats`` carries per-stage timings plus the resolved
  plan's provenance;
* a config built from CLI flags, embedded in a v3 bundle and served through
  a remote shard worker resolves to the *same* plan on the coordinator and
  on the worker (the provision ack reports the worker's plan back).
"""

from __future__ import annotations

import itertools
import warnings

import numpy as np
import pytest

from repro.cli import (
    build_parser,
    load_bundle,
    save_bundle,
    serving_config_from_args,
    serving_overrides_from_args,
)
from repro.core import GhsomConfig, GhsomDetector, SomTrainingConfig
from repro.core.serialization import load_detector, save_detector
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator
from repro.exceptions import ConfigurationError
from repro.serving import ServingConfig, ServingStats, ShardWorkerServer, ShardingSpec
from repro.streaming import OnlineDetector


# --------------------------------------------------------------------------- #
# fixtures (the pristine fitted detector is never mutated; mutation tests
# load their own independent copies from the bundles)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def workload():
    generator = KddSyntheticGenerator(random_state=71)
    train = generator.generate(900)
    test = generator.generate(400)
    pipeline = PreprocessingPipeline()
    return {
        "pipeline": pipeline,
        "X_train": pipeline.fit_transform(train),
        "X_test": pipeline.transform(test),
        "y_train": [str(category) for category in train.categories],
    }


@pytest.fixture(scope="module")
def fitted(workload):
    detector = GhsomDetector(
        GhsomConfig(
            tau1=0.3,
            tau2=0.05,
            max_depth=2,
            max_map_size=36,
            min_samples_for_expansion=25,
            training=SomTrainingConfig(epochs=3),
            random_state=29,
        ),
        random_state=29,
    )
    detector.fit(workload["X_train"], workload["y_train"])
    return detector


@pytest.fixture(scope="module")
def json_bundle(workload, fitted, tmp_path_factory):
    path = tmp_path_factory.mktemp("config_model") / "model.json"
    save_bundle(workload["pipeline"], fitted, path)
    return path


@pytest.fixture(scope="module")
def binary_bundle(workload, fitted, tmp_path_factory):
    path = tmp_path_factory.mktemp("config_model_bin") / "model.json"
    save_bundle(workload["pipeline"], fitted, path, format="binary")
    return path


@pytest.fixture(scope="module")
def baseline_scores(fitted, workload):
    return np.asarray(fitted.detect(workload["X_test"]).scores)


def _fresh_detector(bundle_path):
    _, detector = load_bundle(bundle_path)
    return detector


# --------------------------------------------------------------------------- #
# configure(): the single mutation path
# --------------------------------------------------------------------------- #
class TestConfigure:
    def test_constructor_accepts_a_config(self, workload):
        detector = GhsomDetector(
            GhsomConfig(random_state=0), serving=ServingConfig(engine="numpy")
        )
        assert detector.serving_config.engine == "numpy"

    def test_constructor_rejects_config_plus_legacy_engine(self):
        with pytest.raises(ConfigurationError, match="legacy engine= shorthand"):
            GhsomDetector(
                GhsomConfig(random_state=0),
                engine="numpy",
                serving=ServingConfig(engine="numpy"),
            )

    def test_configure_is_atomic_on_failure(self, json_bundle, workload):
        detector = _fresh_detector(json_bundle)
        before = detector.serving_config
        bad = ServingConfig(engine="fused", provider="none")  # never resolvable
        with pytest.raises(ConfigurationError, match="fused engine is unavailable"):
            detector.configure(bad)
        # Nothing was committed: same config, and the detector still scores.
        assert detector.serving_config == before
        assert detector.resolved_plan().engine == "numpy"
        assert np.isfinite(detector.score_samples(workload["X_test"][:16])).all()

    def test_configure_rejects_non_config(self, json_bundle):
        detector = _fresh_detector(json_bundle)
        with pytest.raises(ConfigurationError):
            detector.configure({"dtype": "float32"})

    def test_sharded_configure_is_byte_identical(
        self, json_bundle, workload, baseline_scores
    ):
        detector = _fresh_detector(json_bundle)
        detector.configure(
            ServingConfig(sharding=ShardingSpec(shards=3, backend="serial"))
        )
        try:
            scores = np.asarray(detector.detect(workload["X_test"]).scores)
        finally:
            detector.configure(ServingConfig())
        np.testing.assert_array_equal(scores, baseline_scores)


# --------------------------------------------------------------------------- #
# satellite 1: order-independent legacy setters
# --------------------------------------------------------------------------- #
class TestOrderIndependence:
    def test_every_setter_ordering_yields_the_same_config_and_scores(
        self, json_bundle, workload
    ):
        setters = {
            "engine": lambda d: d.set_engine("numpy"),
            "dtype": lambda d: d.set_serving_dtype("float32"),
            "sharding": lambda d: d.set_sharding(2, backend="serial"),
        }
        configs, scores = [], []
        for ordering in itertools.permutations(setters):
            detector = _fresh_detector(json_bundle)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                for name in ordering:
                    setters[name](detector)
            configs.append(detector.serving_config)
            scores.append(np.asarray(detector.detect(workload["X_test"]).scores))
            detector.configure(detector.serving_config.evolve(sharding=ShardingSpec()))
        assert all(config == configs[0] for config in configs[1:])
        expected = ServingConfig(
            dtype="float32",
            engine="numpy",
            sharding=ShardingSpec(shards=2, backend="serial"),
        )
        assert configs[0] == expected
        for other in scores[1:]:
            np.testing.assert_array_equal(other, scores[0])


# --------------------------------------------------------------------------- #
# satellite 2: deprecation shims (warning text + unchanged behaviour)
# --------------------------------------------------------------------------- #
class TestDeprecationShims:
    def test_set_engine_warns_and_behaves(self, json_bundle):
        detector = _fresh_detector(json_bundle)
        with pytest.warns(DeprecationWarning, match=r"ServingConfig \(engine="):
            detector.set_engine("numpy")
        assert detector.serving_config.engine == "numpy"

    def test_set_serving_dtype_warns_and_behaves(self, json_bundle):
        detector = _fresh_detector(json_bundle)
        with pytest.warns(DeprecationWarning, match=r"ServingConfig \(dtype="):
            detector.set_serving_dtype("float32")
        assert detector.serving_config.dtype == "float32"
        assert detector.serving_dtype == np.dtype("float32")

    def test_set_sharding_warns_and_behaves(self, json_bundle):
        detector = _fresh_detector(json_bundle)
        with pytest.warns(DeprecationWarning, match=r"ServingConfig \(sharding="):
            detector.set_sharding(2, backend="serial")
        assert detector.serving_config.sharding == ShardingSpec(
            shards=2, backend="serial"
        )
        with pytest.warns(DeprecationWarning):
            detector.set_sharding(None)
        assert not detector.serving_config.sharding.enabled

    def test_load_bundle_legacy_kwargs_warn_once_and_behave(
        self, json_bundle, workload, baseline_scores
    ):
        with pytest.warns(DeprecationWarning, match="ServingConfig") as record:
            _, legacy = load_bundle(json_bundle, dtype="float32")
        assert len([w for w in record if w.category is DeprecationWarning]) == 1
        _, modern = load_bundle(json_bundle, overrides={"dtype": "float32"})
        assert legacy.serving_config == modern.serving_config
        np.testing.assert_array_equal(
            np.asarray(legacy.detect(workload["X_test"]).scores),
            np.asarray(modern.detect(workload["X_test"]).scores),
        )

    def test_load_detector_legacy_kwargs_warn(self, fitted, tmp_path):
        path = tmp_path / "detector.json"
        save_detector(fitted, path)
        with pytest.warns(DeprecationWarning, match="load_detector"):
            detector = load_detector(path, dtype="float32")
        assert detector.serving_config.dtype == "float32"

    def test_forwarded_none_defaults_do_not_warn(self, json_bundle):
        # None for the optional legacy kwargs means "unset", not an override:
        # wrappers forwarding their own defaults must stay warning-free.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            load_bundle(json_bundle, shards=None, workers=None, engine=None)


# --------------------------------------------------------------------------- #
# satellite 3: the config travels inside artifacts and survives refits
# --------------------------------------------------------------------------- #
class TestArtifactEmbeddedConfig:
    @pytest.mark.parametrize("format", ["json", "binary"])
    def test_config_round_trips_through_a_bundle(
        self, workload, json_bundle, tmp_path, format
    ):
        configured = ServingConfig(
            dtype="float32",
            engine="numpy",
            sharding=ShardingSpec(shards=3, backend="serial"),
        )
        detector = _fresh_detector(json_bundle)
        detector.configure(configured)
        expected = np.asarray(detector.detect(workload["X_test"]).scores)
        path = tmp_path / "configured.json"
        save_bundle(workload["pipeline"], detector, path, format=format)
        detector.configure(ServingConfig())
        _, loaded = load_bundle(path)  # no arguments: the artifact speaks
        try:
            assert loaded.serving_config == configured
            assert loaded.sharding is not None
            assert loaded.sharding["n_shards"] == 3
            np.testing.assert_array_equal(
                np.asarray(loaded.detect(workload["X_test"]).scores), expected
            )
        finally:
            loaded.configure(ServingConfig())

    def test_cli_overrides_beat_the_embedded_config(
        self, workload, json_bundle, tmp_path
    ):
        detector = _fresh_detector(json_bundle)
        detector.configure(ServingConfig(dtype="float32", engine="numpy"))
        path = tmp_path / "f32.json"
        save_bundle(workload["pipeline"], detector, path)
        _, loaded = load_bundle(path, overrides={"dtype": "float64"})
        assert loaded.serving_config.dtype == "float64"
        assert loaded.serving_config.engine == "numpy"  # untouched field survives

    def test_config_survives_a_refit(self, json_bundle, workload):
        configured = ServingConfig(
            dtype="float32", sharding=ShardingSpec(shards=2, backend="serial")
        )
        detector = _fresh_detector(json_bundle)
        detector.configure(configured)
        try:
            detector.fit(workload["X_train"], workload["y_train"])
            assert detector.serving_config == configured
            assert detector.serving_dtype == np.dtype("float32")
            result = detector.detect(workload["X_test"])
            assert result.stats.sharded is True
            assert result.stats.dtype == "float32"
        finally:
            detector.configure(ServingConfig())

    def test_online_detector_exposes_and_keeps_the_config(
        self, json_bundle, workload
    ):
        detector = _fresh_detector(json_bundle)
        detector.configure(ServingConfig(dtype="float32"))
        online = OnlineDetector(detector, warmup_size=10, buffer_size=200)
        assert online.serving_config is detector.serving_config
        online.process(workload["X_test"][:64])
        # A drift-triggered refit goes through detector.fit, which re-applies
        # the config; exercise that path directly.
        detector.fit(workload["X_train"])
        assert online.serving_config.dtype == "float32"
        assert detector.serving_dtype == np.dtype("float32")


# --------------------------------------------------------------------------- #
# serving stats on DetectionResult
# --------------------------------------------------------------------------- #
class TestDetectionStats:
    def test_unsharded_stats(self, fitted, workload):
        result = fitted.detect(workload["X_test"])
        stats = result.stats
        assert isinstance(stats, ServingStats)
        assert stats.n_records == workload["X_test"].shape[0]
        assert stats.dtype == "float64"
        assert stats.engine in ("numpy", "fused")
        assert stats.sharded is False
        for value in (stats.ingest_s, stats.route_s, stats.descend_s, stats.merge_s):
            assert value >= 0.0
        assert stats.total_s > 0.0
        assert stats.plan == fitted.resolved_plan().to_dict()

    def test_sharded_stats_carry_plan_provenance(self, json_bundle, workload):
        _, detector = load_bundle(json_bundle, overrides={"shards": 2, "backend": "serial"})
        try:
            stats = detector.detect(workload["X_test"]).stats
        finally:
            detector.configure(ServingConfig())
        assert stats.sharded is True
        assert stats.plan["n_shards"] == 2
        assert stats.plan["backend"] == "serial"


# --------------------------------------------------------------------------- #
# CLI flag helpers
# --------------------------------------------------------------------------- #
class TestCliHelpers:
    def test_only_explicit_flags_become_overrides(self):
        args = build_parser().parse_args(
            ["detect", "--model", "m", "--input", "i", "--float32", "--shards", "2"]
        )
        assert serving_overrides_from_args(args) == {"dtype": "float32", "shards": 2}

    def test_no_flags_mean_no_overrides(self):
        args = build_parser().parse_args(["detect", "--model", "m", "--input", "i"])
        assert serving_overrides_from_args(args) == {}
        assert serving_config_from_args(args) == ServingConfig()

    def test_full_flag_set_builds_a_config(self):
        args = build_parser().parse_args(
            [
                "detect",
                "--model", "m",
                "--input", "i",
                "--float32",
                "--engine", "numpy",
                "--no-mmap",
                "--verify",
                "--shards", "4",
                "--shard-backend", "remote",
                "--remote-workers", "a:1,b:2",
                "--provisioning", "value",
            ]
        )
        config = serving_config_from_args(args)
        assert config.dtype == "float32"
        assert config.engine == "numpy"
        assert config.artifact.mmap is False
        assert config.artifact.verify is True
        assert config.sharding == ShardingSpec(
            shards=4, remote_workers="a:1,b:2", provisioning="value"
        )

    def test_inspect_prints_the_resolved_plan(self, binary_bundle, capsys):
        from repro.cli import main

        assert main(["inspect", "--model", str(binary_bundle)]) == 0
        output = capsys.readouterr().out
        assert "Serving plan" in output
        assert "engine" in output
        assert "usable cores" in output


# --------------------------------------------------------------------------- #
# acceptance: CLI flags → embedded config → remote worker, one plan everywhere
# --------------------------------------------------------------------------- #
class TestCoordinatorWorkerPlanParity:
    def test_identical_resolved_plans_on_both_ends(
        self, workload, json_bundle, tmp_path, baseline_scores
    ):
        with ShardWorkerServer("127.0.0.1", 0).start() as server:
            address = f"{server.address[0]}:{server.address[1]}"
            # The operator's intent, expressed once as CLI flags.
            args = build_parser().parse_args(
                [
                    "detect",
                    "--model", "m",
                    "--input", "i",
                    "--shards", "2",
                    "--remote-workers", address,
                    "--provisioning", "value",
                ]
            )
            config = serving_config_from_args(args)
            detector = _fresh_detector(json_bundle)
            detector.configure(config)
            path = tmp_path / "remote_configured.json"
            save_bundle(workload["pipeline"], detector, path, format="binary")
            detector.configure(ServingConfig())
            # Round trip: the bundle alone rehydrates the remote setup.
            _, loaded = load_bundle(path)
            try:
                assert loaded.serving_config == config
                coordinator_plan = loaded.resolved_plan().to_dict()
                scores = np.asarray(loaded.detect(workload["X_test"]).scores)
                backend = loaded._shard_spec[1]
                assert backend.stats["remote_tasks"] > 0
                worker_plan = backend.worker_plans[address]
            finally:
                loaded.configure(ServingConfig())
        # Byte-identity first: remote serving changed nothing.
        np.testing.assert_array_equal(scores, baseline_scores)
        # The worker resolved the shipped config to the exact plan the
        # coordinator holds (same host stack in this test, so even the
        # environment-dependent fields agree).
        assert worker_plan == coordinator_plan
        assert worker_plan["n_shards"] == 2
        assert worker_plan["backend"] == "remote"
        assert worker_plan["provisioning"] == "value"
