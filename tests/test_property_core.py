"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distances import chebyshev, euclidean, manhattan, squared_euclidean
from repro.core.grid import MapGrid
from repro.core.neighborhood import bubble_neighborhood, gaussian_neighborhood
from repro.core.quantization import (
    dataset_quantization_error,
    mean_quantization_error,
    unit_quantization_errors,
)
from repro.core.thresholds import GlobalThreshold, PerUnitThreshold
from repro.eval.metrics import auc, binary_metrics, roc_curve

# Hypothesis settings tuned for numerical code: modest example counts, no
# deadline (numpy warm-up can be slow on the first example).
DEFAULT_SETTINGS = {
    "max_examples": 50,
    "deadline": None,
    "suppress_health_check": [HealthCheck.too_slow],
}

finite_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


def matrices(min_rows=1, max_rows=12, min_cols=1, max_cols=6):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_rows, max_rows), st.integers(min_cols, max_cols)
        ),
        elements=finite_floats,
    )


class TestDistanceProperties:
    @given(data=st.data())
    @settings(**DEFAULT_SETTINGS)
    def test_distances_nonnegative_and_symmetric(self, data):
        samples = data.draw(matrices(min_rows=1, max_rows=8, min_cols=2, max_cols=5))
        distances = squared_euclidean(samples, samples)
        assert np.all(distances >= 0.0)
        np.testing.assert_allclose(distances, distances.T, atol=1e-6)
        np.testing.assert_allclose(np.diag(distances), 0.0, atol=1e-6)

    @given(data=st.data())
    @settings(**DEFAULT_SETTINGS)
    def test_metric_ordering_property(self, data):
        n_cols = data.draw(st.integers(2, 5))
        samples = data.draw(
            hnp.arrays(np.float64, (4, n_cols), elements=finite_floats)
        )
        codebook = data.draw(
            hnp.arrays(np.float64, (3, n_cols), elements=finite_floats)
        )
        cheb = chebyshev(samples, codebook)
        eucl = euclidean(samples, codebook)
        manh = manhattan(samples, codebook)
        # Tolerance matched to the rounding of the fast squared-distance
        # expansion at coordinate magnitudes around 100.
        assert np.all(cheb <= eucl + 1e-4)
        assert np.all(eucl <= manh + 1e-4)

    @given(data=st.data(), shift=finite_floats)
    @settings(**DEFAULT_SETTINGS)
    def test_translation_invariance(self, data, shift):
        samples = data.draw(matrices(min_rows=2, max_rows=6, min_cols=2, max_cols=4))
        codebook = samples[: max(1, samples.shape[0] // 2)]
        original = euclidean(samples, codebook)
        translated = euclidean(samples + shift, codebook + shift)
        # The fast |x|^2 - 2x.w + |w|^2 expansion loses a few ulps for large
        # coordinates, so compare with a tolerance matched to the data scale.
        np.testing.assert_allclose(original, translated, atol=1e-4)


class TestGridProperties:
    @given(rows=st.integers(1, 12), cols=st.integers(1, 12))
    @settings(**DEFAULT_SETTINGS)
    def test_index_position_roundtrip(self, rows, cols):
        grid = MapGrid(rows, cols)
        for unit in range(grid.n_units):
            row, col = grid.position(unit)
            assert grid.unit_index(row, col) == unit

    @given(rows=st.integers(1, 10), cols=st.integers(1, 10))
    @settings(**DEFAULT_SETTINGS)
    def test_neighbor_counts(self, rows, cols):
        grid = MapGrid(rows, cols)
        for unit in range(grid.n_units):
            neighbors = grid.neighbors(unit)
            assert 0 <= len(neighbors) <= 4
            assert unit not in neighbors

    @given(rows=st.integers(2, 8), cols=st.integers(2, 8))
    @settings(**DEFAULT_SETTINGS)
    def test_grid_distance_triangle_inequality(self, rows, cols):
        grid = MapGrid(rows, cols)
        distances = grid.grid_distances()
        n = grid.n_units
        indices = np.random.default_rng(0).integers(0, n, size=(10, 3))
        for a, b, c in indices:
            assert distances[a, c] <= distances[a, b] + distances[b, c] + 1e-9


class TestNeighborhoodProperties:
    @given(
        distances=hnp.arrays(np.float64, 20, elements=st.floats(0.0, 50.0)),
        radius=st.floats(0.01, 20.0),
    )
    @settings(**DEFAULT_SETTINGS)
    def test_gaussian_bounded_and_max_at_zero(self, distances, radius):
        influence = gaussian_neighborhood(distances, radius)
        assert np.all(influence >= 0.0) and np.all(influence <= 1.0)
        assert gaussian_neighborhood(np.array([0.0]), radius)[0] == pytest.approx(1.0)

    @given(
        distances=hnp.arrays(np.float64, 20, elements=st.floats(0.0, 50.0)),
        radius=st.floats(0.0, 20.0),
    )
    @settings(**DEFAULT_SETTINGS)
    def test_bubble_is_indicator(self, distances, radius):
        influence = bubble_neighborhood(distances, radius)
        assert set(np.unique(influence)).issubset({0.0, 1.0})
        np.testing.assert_array_equal(influence, (distances <= radius).astype(float))


class TestQuantizationProperties:
    @given(data=st.data())
    @settings(**DEFAULT_SETTINGS)
    def test_qe0_zero_iff_constant_data(self, data):
        row = data.draw(hnp.arrays(np.float64, 4, elements=finite_floats))
        repeated = np.tile(row, (6, 1))
        assert dataset_quantization_error(repeated) == pytest.approx(0.0, abs=1e-4)

    @given(data=st.data())
    @settings(**DEFAULT_SETTINGS)
    def test_unit_errors_nonnegative_and_mqe_bounded(self, data):
        samples = data.draw(matrices(min_rows=3, max_rows=10, min_cols=2, max_cols=4))
        codebook = data.draw(
            hnp.arrays(np.float64, (3, samples.shape[1]), elements=finite_floats)
        )
        errors = unit_quantization_errors(samples, codebook)
        assert np.all(errors >= 0.0)
        mqe = mean_quantization_error(samples, codebook)
        assert 0.0 <= mqe <= errors.max() + 1e-9

    @given(data=st.data())
    @settings(**DEFAULT_SETTINGS)
    def test_codebook_containing_all_samples_gives_zero_error(self, data):
        samples = data.draw(matrices(min_rows=2, max_rows=6, min_cols=2, max_cols=4))
        errors = unit_quantization_errors(samples, samples)
        np.testing.assert_allclose(errors, 0.0, atol=1e-4)


class TestThresholdProperties:
    @given(
        distances=hnp.arrays(
            np.float64, st.integers(5, 60), elements=st.floats(0.0, 10.0)
        ),
        percentile=st.floats(50.0, 100.0),
    )
    @settings(**DEFAULT_SETTINGS)
    def test_global_threshold_bounds_training_fraction(self, distances, percentile):
        strategy = GlobalThreshold(percentile=percentile).fit(distances)
        ratios = strategy.normalize(distances, [("root", 0)] * distances.size)
        fraction_above = float(np.mean(ratios > 1.0))
        assert fraction_above <= 1.0 - percentile / 100.0 + 0.35

    @given(
        distances=hnp.arrays(np.float64, 40, elements=st.floats(0.0, 5.0)),
        k=st.floats(0.5, 5.0),
    )
    @settings(**DEFAULT_SETTINGS)
    def test_per_unit_thresholds_positive(self, distances, k):
        keys = [("root", index % 4) for index in range(distances.size)]
        strategy = PerUnitThreshold(k=k, min_count=3).fit(distances, keys)
        for unit in range(4):
            assert strategy.threshold_for(("root", unit)) > 0.0


class TestMetricsProperties:
    @given(
        y_true=hnp.arrays(np.int64, st.integers(2, 80), elements=st.integers(0, 1)),
        data=st.data(),
    )
    @settings(**DEFAULT_SETTINGS)
    def test_binary_metrics_rates_in_unit_interval(self, y_true, data):
        y_pred = data.draw(
            hnp.arrays(np.int64, y_true.shape[0], elements=st.integers(0, 1))
        )
        metrics = binary_metrics(y_true, y_pred)
        for value in metrics.as_dict().values():
            assert 0.0 <= value <= 1.0
        total = (
            metrics.true_positives
            + metrics.false_positives
            + metrics.true_negatives
            + metrics.false_negatives
        )
        assert total == y_true.shape[0]

    @given(data=st.data())
    @settings(**DEFAULT_SETTINGS)
    def test_roc_curve_endpoints_and_auc_bounds(self, data):
        n = data.draw(st.integers(4, 100))
        y_true = data.draw(hnp.arrays(np.int64, n, elements=st.integers(0, 1)))
        scores = data.draw(
            hnp.arrays(np.float64, n, elements=st.floats(0.0, 1.0))
        )
        fpr, tpr, _ = roc_curve(y_true, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == pytest.approx(1.0) or y_true.sum() in (0, n)
        area = auc(fpr, tpr)
        assert -1e-9 <= area <= 1.0 + 1e-9

    @given(data=st.data())
    @settings(**DEFAULT_SETTINGS)
    def test_auc_invariant_to_monotone_score_transform(self, data):
        n = data.draw(st.integers(6, 60))
        y_true = data.draw(hnp.arrays(np.int64, n, elements=st.integers(0, 1)))
        # Scores are drawn on a coarse grid so that the strictly monotone
        # transform below cannot create or destroy ties through rounding
        # (ties change the ROC curve, which would be a different invariant).
        score_codes = data.draw(hnp.arrays(np.int64, n, elements=st.integers(1, 10_000)))
        scores = score_codes.astype(float) / 1000.0
        fpr1, tpr1, _ = roc_curve(y_true, scores)
        fpr2, tpr2, _ = roc_curve(y_true, np.log(scores) * 3.0 + 7.0)
        assert auc(fpr1, tpr1) == pytest.approx(auc(fpr2, tpr2), abs=1e-6)
