"""RPL005 bad: mutating a frozen dataclass outside __post_init__."""


def set_backend(config, backend):
    object.__setattr__(config, "backend", backend)
