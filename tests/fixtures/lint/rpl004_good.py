"""RPL004 good: raw sends only in send_frame; callers hold the lock."""


def send_frame(sock, payload):
    sock.sendall(payload)


def submit(self, payload):
    with self._send_lock:
        send_frame(self._sock, payload)
