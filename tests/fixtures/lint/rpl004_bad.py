"""RPL004 bad: unlocked frame sends and raw socket writes."""


def submit(self, payload):
    send_frame(self._sock, payload)  # noqa: F821 - lint fixture snippet


def push(sock, data):
    sock.sendall(data)
