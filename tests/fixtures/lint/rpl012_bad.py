"""RPL012 bad: fire-and-forget create_task handles."""

import asyncio


async def kickoff(worker):
    asyncio.create_task(worker.run())


async def kickoff_on_loop(loop, worker):
    loop.create_task(worker.run())
