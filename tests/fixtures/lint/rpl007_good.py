"""RPL007 good: broad handlers wrap failures into the serving error surface."""

from repro.exceptions import ServingError


def run(task):
    try:
        return task()
    except Exception as exc:
        raise ServingError(f"task failed: {exc}") from exc
