"""RPL009 good: coroutines await async twins or hop via the executor."""

import asyncio


def _score(detector, rows):
    return detector.detect(rows)


async def handler(reader, detector, rows):
    payload = await reader.read(1024)
    loop = asyncio.get_running_loop()
    result = await loop.run_in_executor(None, _score, detector, rows)
    await asyncio.sleep(0)
    return payload, result
