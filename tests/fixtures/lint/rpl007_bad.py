"""RPL007 bad: a serving-tier broad handler that swallows the failure."""


def run(task):
    try:
        return task()
    except Exception:
        return None
