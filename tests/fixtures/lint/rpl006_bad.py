"""RPL006 bad: importing kernel providers around the kernels seam."""

import numba  # noqa: F401 - lint fixture snippet

from repro.core import _numba_kernels  # noqa: F401 - lint fixture snippet
from repro.core._numba_kernels import descent_kernel  # noqa: F401 - lint fixture snippet
