"""RPL013 bad: a reader thread mutates loop-affine asyncio state."""

import asyncio
import threading


class Pump:
    def __init__(self):
        self._queue = asyncio.Queue()

    def start(self):
        thread = threading.Thread(target=self._pump, daemon=True)
        thread.start()

    def _pump(self):
        self._queue.put_nowait("frame")
