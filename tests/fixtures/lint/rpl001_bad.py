"""RPL001 bad: raw JSON/npz artifact writes (linted as a repro module)."""

import json

import numpy as np


def save_model(path, payload, arrays):
    with open(path, "w") as handle:
        json.dump(payload, handle)
    np.savez(path.with_suffix(".npz"), **arrays)


def save_doc(path, payload):
    path.write_text(json.dumps(payload, indent=2))
