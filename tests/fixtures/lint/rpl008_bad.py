"""RPL008 bad: an ad-hoc pool outside the backend seam."""

from concurrent.futures import ThreadPoolExecutor


def run_all(tasks):
    with ThreadPoolExecutor(max_workers=4) as pool:
        futures = [pool.submit(task) for task in tasks]
    return [future.result() for future in futures]
