"""RPL005 good: __post_init__ normalisation is the sanctioned mutation window."""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Config:
    backend: str = "serial"

    def __post_init__(self):
        object.__setattr__(self, "backend", str(self.backend))


def with_backend(config, backend):
    return replace(config, backend=backend)
