"""RPL014 good: executor callables hand results back thread-safely."""

import asyncio
from concurrent.futures import ThreadPoolExecutor


class Bridge:
    def __init__(self, loop):
        self._done = asyncio.Event()
        self._loop = loop
        self._pool = ThreadPoolExecutor(max_workers=1)

    def kick(self):
        self._pool.submit(self._work)

    def _work(self):
        self._loop.call_soon_threadsafe(self._done.set)
