"""RPL006 good: providers reached through the repro.core.kernels seam."""

from repro.core import kernels


def run(shard, matrix, entries):
    return kernels.fused_descent(shard, matrix, entries, metric="euclidean")
