"""RPL008 good: pooling goes through make_backend (sizing + lifecycle policy)."""

from repro.serving.backends import make_backend


def run_all(shards, tasks):
    backend = make_backend("thread", workers=4)
    try:
        return backend.run(shards, tasks)
    finally:
        backend.close()
