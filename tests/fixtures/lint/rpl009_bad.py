"""RPL009 bad: blocking calls reachable from coroutines.

``handler`` blocks three ways: directly (``time.sleep``), transitively
through two sync helpers (the case a per-node rule provably misses), and by
running the model inline with ``detect()``.
"""

import time


def _drain(sock):
    time.sleep(0.05)


def _relay(sock):
    _drain(sock)


async def handler(sock, detector, rows):
    time.sleep(0.1)
    _relay(sock)
    return detector.detect(rows)
