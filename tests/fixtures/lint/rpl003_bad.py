"""RPL003 bad: float dtype conversions inside the scoring hot path."""

import numpy as np


def assign_arrays(self, data):
    matrix = data.astype(np.float32)
    lanes = np.asarray(data, dtype=np.float64)
    return matrix, lanes
