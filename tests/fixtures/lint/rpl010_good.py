"""RPL010 good: asyncio locks across awaits; thread locks released first."""

import asyncio
import threading


class Batcher:
    def __init__(self):
        self._alock = asyncio.Lock()
        self._tlock = threading.Lock()

    async def flush(self, batch):
        async with self._alock:
            await asyncio.sleep(0.01)

    async def drain(self, batch):
        with self._tlock:
            batch.reverse()
        await asyncio.sleep(0.01)
