"""RPL012 good: task handles are stored or owned by a TaskGroup."""

import asyncio


class Runner:
    def __init__(self):
        self._tasks = set()

    async def kickoff(self, worker):
        task = asyncio.create_task(worker.run())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def kickoff_group(self, worker):
        async with asyncio.TaskGroup() as tg:
            tg.create_task(worker.run())
