"""RPL013 good: foreign threads marshal onto the loop thread-safely."""

import asyncio
import threading


class Pump:
    def __init__(self, loop):
        self._queue = asyncio.Queue()
        self._loop = loop

    def start(self):
        thread = threading.Thread(target=self._pump, daemon=True)
        thread.start()

    def _pump(self):
        self._loop.call_soon_threadsafe(self._queue.put_nowait, "frame")
