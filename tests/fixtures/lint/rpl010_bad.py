"""RPL010 bad: awaits while a threading lock is held.

``flush`` holds the lock lexically across the await; ``drain`` does it
flow-wise (``acquire`` … ``await`` … ``release``) with no ``with`` block in
sight — only the CFG dataflow catches that one.
"""

import asyncio
import threading


class Batcher:
    def __init__(self):
        self._lock = threading.Lock()

    async def flush(self, batch):
        with self._lock:
            await asyncio.sleep(0.01)

    async def drain(self, batch):
        self._lock.acquire()
        await asyncio.sleep(0.01)
        self._lock.release()
