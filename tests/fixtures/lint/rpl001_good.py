"""RPL001 good: artifact writes routed through the atomic writers."""

import json

from repro.core.serialization import write_json_atomic
from repro.utils.mmapio import write_npz_atomic


def save_model(path, payload, arrays):
    write_json_atomic(payload, path)
    write_npz_atomic(arrays, path.with_suffix(".npz"))


def render(payload):
    return json.dumps(payload)  # serialising to a string is not a file write
