"""RPL003 good: index-dtype bookkeeping and construction-time casts are legal."""

import numpy as np


def assign_arrays(self, data, rows):
    entries = np.ascontiguousarray(rows, dtype=np.intp)
    order = entries.astype(np.int64, copy=False)
    return data, order


def from_arrays(codebook):
    # Construction-time cast: runs once at load, not per scoring batch.
    return np.ascontiguousarray(codebook, dtype=np.float32)
