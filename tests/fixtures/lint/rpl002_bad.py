"""RPL002 bad: pickle deserialization outside the transport trust boundary."""

import pickle


def read_shard(path):
    with open(path, "rb") as stream:
        return pickle.load(stream)


def decode(body):
    return pickle.loads(body)
