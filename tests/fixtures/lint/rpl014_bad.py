"""RPL014 bad: an executor callable reaches back into asyncio state."""

import asyncio
from concurrent.futures import ThreadPoolExecutor


class Bridge:
    def __init__(self):
        self._done = asyncio.Event()
        self._pool = ThreadPoolExecutor(max_workers=1)

    def kick(self):
        self._pool.submit(self._work)

    def _work(self):
        self._done.set()
