"""RPL002 good: pickle *serialization* is fine anywhere; loads stays in transport."""

import pickle


def encode(payload):
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
