"""RPL011 bad: two call paths acquire the same locks in opposite order."""

import threading


class ShardTable:
    def __init__(self):
        self._slots_lock = threading.Lock()
        self._stats_lock = threading.Lock()

    def assign(self, shard):
        with self._slots_lock:
            with self._stats_lock:
                return shard

    def report(self):
        with self._stats_lock:
            with self._slots_lock:
                return {}
