"""Regenerate the golden model artifacts committed in this directory.

The fixtures pin the *on-disk format contract*: tiny pre-built v1 / v2 / v3
detector artifacts plus a fixed scoring batch and its expected outputs,
stored exactly (``float.hex()``).  ``tests/test_golden_artifacts.py`` loads
each committed artifact with the current readers, asserts the three formats
agree bit for bit with each other, and pins the absolute scores against the
stored values (with last-ulp slack for cross-machine BLAS variation) — so
any change to the serialization layer that silently alters how *existing*
artifacts deserialize (or score) fails loudly instead of drifting.

Run from the repository root only when the format genuinely changes::

    PYTHONPATH=src python tests/fixtures/artifacts/regenerate.py

and commit the resulting files together with the format change that
motivated them.  Scores are stored as ``float.hex()`` strings: exact, and
diffable in review.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core import GhsomConfig, GhsomDetector, SomTrainingConfig
from repro.core.serialization import (
    detector_to_dict,
    save_detector,
    write_json_atomic,
)
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator

FIXTURE_DIR = Path(__file__).resolve().parent

#: Everything below is pinned: changing any of it regenerates *different*
#: goldens, which is only acceptable alongside an intentional format change.
SEED = 99
N_TRAIN = 300
N_BATCH = 32
CONFIG = {
    "tau1": 0.4,
    "tau2": 0.1,
    "max_depth": 2,
    "max_map_size": 16,
    "max_growth_rounds": 6,
    "min_samples_for_expansion": 30,
    "random_state": SEED,
}
EPOCHS = 3


def build_detector_and_batch():
    generator = KddSyntheticGenerator(random_state=SEED)
    train, test = generator.generate_train_test(N_TRAIN, N_BATCH)
    pipeline = PreprocessingPipeline()
    X_train = pipeline.fit_transform(train)
    X_batch = pipeline.transform(test)
    config = GhsomConfig(training=SomTrainingConfig(epochs=EPOCHS), **CONFIG)
    detector = GhsomDetector(config, random_state=SEED)
    detector.fit(X_train, [str(category) for category in train.categories])
    return detector, np.ascontiguousarray(X_batch, dtype=np.float64)


def main() -> None:
    detector, batch = build_detector_and_batch()
    result = detector.detect(batch)

    np.save(FIXTURE_DIR / "batch.npy", batch)
    write_json_atomic(
        detector_to_dict(detector, version=1), FIXTURE_DIR / "detector_v1.json"
    )
    write_json_atomic(
        detector_to_dict(detector, version=2), FIXTURE_DIR / "detector_v2.json"
    )
    save_detector(detector, FIXTURE_DIR / "detector_v3.json", format="binary")
    expected = {
        "scores_hex": [float(score).hex() for score in result.scores],
        "predictions": [int(flag) for flag in result.predictions],
        "categories": [str(category) for category in result.categories],
        "leaf_index": [int(row) for row in result.leaf_index],
        "topology": detector.topology_summary(),
    }
    write_json_atomic(expected, FIXTURE_DIR / "expected.json")
    print(f"regenerated golden artifacts in {FIXTURE_DIR}")
    print(f"topology: {expected['topology']}")


if __name__ == "__main__":
    main()
