"""Tests for repro.data.loader (CSV IO and splitting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loader import (
    class_balance,
    load_csv,
    save_csv,
    stratified_split,
    train_test_split,
)
from repro.exceptions import DataValidationError


class TestCsvRoundtrip:
    def test_save_and_load_preserves_records(self, small_dataset, tmp_path):
        path = tmp_path / "dataset.csv"
        save_csv(small_dataset, path)
        loaded = load_csv(path)
        assert len(loaded) == len(small_dataset)
        assert list(map(str, loaded.labels)) == list(map(str, small_dataset.labels))
        np.testing.assert_allclose(
            loaded.numeric_matrix(), small_dataset.numeric_matrix(), rtol=1e-4, atol=1e-4
        )

    def test_load_without_header(self, small_dataset, tmp_path):
        path = tmp_path / "noheader.csv"
        save_csv(small_dataset.subset(range(20)), path, header=False)
        loaded = load_csv(path)
        assert len(loaded) == 20

    def test_trailing_dot_in_label_stripped(self, small_dataset, tmp_path):
        path = tmp_path / "dots.csv"
        subset = small_dataset.subset(range(5))
        save_csv(subset, path, header=False)
        content = path.read_text().strip().splitlines()
        content = [line + "." for line in content]
        path.write_text("\n".join(content) + "\n")
        loaded = load_csv(path)
        assert all(not str(label).endswith(".") for label in loaded.labels)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataValidationError):
            load_csv(tmp_path / "nope.csv")

    def test_malformed_row_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,2,3\n")
        with pytest.raises(DataValidationError):
            load_csv(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataValidationError):
            load_csv(path)

    def test_non_numeric_value_in_numeric_column_raises(self, small_dataset, tmp_path):
        path = tmp_path / "corrupt.csv"
        save_csv(small_dataset.subset(range(2)), path, header=False)
        lines = path.read_text().strip().splitlines()
        fields = lines[0].split(",")
        fields[0] = "not-a-number"
        lines[0] = ",".join(fields)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DataValidationError):
            load_csv(path)


class TestTrainTestSplit:
    def test_sizes_add_up(self, small_dataset):
        train, test = train_test_split(small_dataset, 0.25, random_state=0)
        assert len(train) + len(test) == len(small_dataset)
        assert len(test) == round(0.25 * len(small_dataset))

    def test_no_overlap_and_full_coverage(self, small_dataset):
        train, test = train_test_split(small_dataset, 0.3, random_state=1)
        combined = sorted(map(str, np.concatenate([train.labels, test.labels])))
        assert combined == sorted(map(str, small_dataset.labels))

    def test_fraction_must_be_exclusive(self, small_dataset):
        with pytest.raises(DataValidationError):
            train_test_split(small_dataset, 0.0)
        with pytest.raises(DataValidationError):
            train_test_split(small_dataset, 1.0)

    def test_reproducible_with_seed(self, small_dataset):
        first = train_test_split(small_dataset, 0.3, random_state=9)[1]
        second = train_test_split(small_dataset, 0.3, random_state=9)[1]
        assert list(map(str, first.labels)) == list(map(str, second.labels))


class TestStratifiedSplit:
    def test_category_proportions_preserved(self, small_dataset):
        train, test = stratified_split(small_dataset, 0.3, random_state=0)
        original = class_balance(small_dataset)
        split = class_balance(test)
        for category, fraction in original.items():
            if fraction > 0.05:  # small classes fluctuate too much to compare
                assert abs(split.get(category, 0.0) - fraction) < 0.1

    def test_every_class_present_in_train(self, small_dataset):
        train, _ = stratified_split(small_dataset, 0.3, random_state=0)
        assert set(train.class_counts()) == set(small_dataset.class_counts())

    def test_sizes_add_up(self, small_dataset):
        train, test = stratified_split(small_dataset, 0.2, random_state=0)
        assert len(train) + len(test) == len(small_dataset)


class TestClassBalance:
    def test_fractions_sum_to_one(self, small_dataset):
        balance = class_balance(small_dataset)
        assert abs(sum(balance.values()) - 1.0) < 1e-9
