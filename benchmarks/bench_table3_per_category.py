"""Table 3 — per-attack-category detection rates.

Regenerates the per-category table: detection rate for DoS, Probe, R2L and
U2R traffic (and the false-positive rate on normal traffic) for every
detector.  The timed kernel is GHSOM batch scoring of the test split.

Expected shape: DoS and Probe are detected almost perfectly, R2L and U2R are
markedly harder — the ordering reported throughout the KDD-based intrusion
detection literature.
"""

from __future__ import annotations

from common import make_detectors, make_supervised_workload

from repro.eval.metrics import per_category_detection_rates
from repro.eval.tables import format_table

CATEGORIES = ("normal", "dos", "probe", "r2l", "u2r")


def test_table3_per_category_detection(benchmark):
    workload = make_supervised_workload()
    detectors = make_detectors()

    per_detector = {}
    for name, detector in detectors.items():
        detector.fit(workload["X_train"], workload["y_train"])
        predictions = detector.predict(workload["X_test"])
        per_detector[name] = per_category_detection_rates(
            workload["test_categories"], predictions
        )

    ghsom = detectors["ghsom"]
    benchmark(lambda: ghsom.predict(workload["X_test"]))

    rows = []
    for name in ("ghsom", "som", "kmeans", "pca", "knn"):
        rates = per_detector[name]
        rows.append([name] + [rates.get(category) for category in CATEGORIES])
    print()
    print(
        format_table(
            rows,
            ["detector", "FPR(normal)", "DR(dos)", "DR(probe)", "DR(r2l)", "DR(u2r)"],
            title="Table 3: per-category detection rate (alarm fraction per true category)",
        )
    )

    ghsom_rates = per_detector["ghsom"]
    # Shape: volumetric attacks are near-perfectly detected and are easier
    # than the content-based R2L/U2R classes for the distance-based detector.
    assert ghsom_rates["dos"] > 0.95
    assert ghsom_rates["probe"] > 0.9
    assert ghsom_rates["normal"] < 0.1
    assert ghsom_rates["dos"] >= ghsom_rates["u2r"] - 0.05
