"""Figure 1 — ROC curves, GHSOM vs baselines (one-class / novelty mode).

Regenerates the ROC-curve figure: every detector is trained on normal-only
traffic and scored on a mixed test split; the printed series are
(false-positive rate, detection rate) points sampled along each curve, plus
the area under each curve.  The timed kernel is GHSOM scoring.

Expected shape: the GHSOM curve dominates the flat SOM and k-means curves
(higher detection rate at the same false-positive rate).
"""

from __future__ import annotations

import numpy as np

from common import make_detectors, make_oneclass_workload

from repro.eval.metrics import auc, detection_rate_at_fpr, roc_curve
from repro.eval.tables import format_series, format_table

#: FPR grid at which each curve is sampled for the printed figure data.
FPR_GRID = (0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2)


def test_fig1_roc_curves(benchmark):
    workload = make_oneclass_workload()
    detectors = make_detectors()

    scores_by_detector = {}
    aucs = {}
    for name, detector in detectors.items():
        detector.fit(workload["X_train"])  # one-class: no labels
        scores = detector.score_samples(workload["X_test"])
        scores_by_detector[name] = scores
        fpr, tpr, _ = roc_curve(workload["y_test"], scores)
        aucs[name] = auc(fpr, tpr)

    ghsom = detectors["ghsom"]
    benchmark(lambda: ghsom.score_samples(workload["X_test"]))

    sampled = {
        name: [
            detection_rate_at_fpr(workload["y_test"], scores_by_detector[name], target)
            for target in FPR_GRID
        ]
        for name in detectors
    }
    print()
    print(
        format_series(
            list(FPR_GRID),
            {name: sampled[name] for name in ("ghsom", "som", "kmeans", "pca", "knn")},
            x_label="FPR",
            title="Figure 1: detection rate at fixed false-positive rates (one-class training)",
        )
    )
    print()
    print(
        format_table(
            [[name, aucs[name]] for name in ("ghsom", "som", "kmeans", "pca", "knn")],
            ["detector", "AUC"],
            title="Figure 1b: area under the ROC curve",
        )
    )

    # Shape: GHSOM dominates the flat SOM and k-means one-class baselines.
    assert aucs["ghsom"] > 0.9
    assert aucs["ghsom"] >= aucs["som"] - 0.02
    assert aucs["ghsom"] >= aucs["kmeans"] - 0.02
    ghsom_dr_at_1pct = sampled["ghsom"][FPR_GRID.index(0.01)]
    som_dr_at_1pct = sampled["som"][FPR_GRID.index(0.01)]
    assert ghsom_dr_at_1pct >= som_dr_at_1pct - 0.05
