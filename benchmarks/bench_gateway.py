"""Detection-gateway benchmark — micro-batching vs sequential requests.

Spawns one real ``repro-ids serve`` subprocess on 127.0.0.1 and drives it
closed-loop at increasing offered concurrency (1, 8, 64, 512 in-flight
single-record requests), recording p50/p99 latency and requests/s per
level, plus the in-process direct-``detect`` figures for context.  Writes
``BENCH_gateway.json`` at the repository root.

The two properties the numbers must show:

* **identity** — at concurrency 1 every request is served alone, so each
  response must be byte-identical to calling ``detect`` on the same rows
  directly (the numerical gate: the gateway adds zero error);
* **micro-batching pays** — at concurrency >= 64 the coalesced path must
  beat the sequential one-request-per-detect baseline on requests/s: that
  is the entire reason the gateway exists.  The latency columns make the
  cost visible — the tick adds a bounded wait at low concurrency and the
  batch descent amortises it away at high concurrency.

The closed-loop driver chains resubmission off each response's completion
callback (the connection's reader thread), so 512 in-flight requests need
one socket and two threads, not 512 of each.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_gateway.py          # full
    PYTHONPATH=src python benchmarks/bench_gateway.py --quick  # fast

or under pytest (quick mode)::

    PYTHONPATH=src python -m pytest benchmarks/bench_gateway.py -s
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from common import BENCH_SEED, default_ghsom_config, pinned_blas_env, time_best

from repro.core import GhsomDetector
from repro.core.serialization import write_json_atomic
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator
from repro.eval.tables import format_table
from repro.serving import GatewayClient

#: Where the machine-readable results land (repo root, next to CHANGES.md).
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_gateway.json"

N_TRAIN = 4000
TICK_MS = 2.0
MAX_BATCH_ROWS = 4096
CONCURRENCY_LEVELS = (1, 8, 64, 512)
#: Completed requests measured per concurrency level (scaled down in quick
#: mode).  Sequential requests pay the full tick each, so level 1 uses fewer.
REQUESTS_PER_LEVEL = {1: 400, 8: 1500, 64: 6000, 512: 12000}
QUICK_REQUESTS_PER_LEVEL = {1: 150, 8: 500, 64: 2000, 512: 4000}

_LISTEN_RE = re.compile(r"listening on ([0-9.]+):(\d+)")


class LoopbackGateway:
    """One ``repro-ids serve`` subprocess on an ephemeral port."""

    def __init__(self, model_path: Path, tick_ms: float = TICK_MS) -> None:
        src_dir = str(Path(__file__).resolve().parent.parent / "src")
        # The server gets every BLAS pool pinned to one thread (set before
        # the child imports numpy): the benchmark attributes throughput to
        # micro-batching, not to the server's BLAS racing the client's.
        env = pinned_blas_env(1)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_dir if not existing else src_dir + os.pathsep + existing
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--model",
            str(model_path),
            "--tick-ms",
            str(tick_ms),
            "--max-batch-rows",
            str(MAX_BATCH_ROWS),
        ]
        self.process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        seen: List[str] = []
        match = None
        while True:
            line = self.process.stdout.readline()
            if not line:
                break  # EOF: the gateway exited before listening
            seen.append(line)
            match = _LISTEN_RE.search(line)
            if match:
                break
        if not match:
            self.process.kill()
            raise RuntimeError(f"gateway failed to start: {''.join(seen)!r}")
        self.address: Tuple[str, int] = (match.group(1), int(match.group(2)))

    def stop(self) -> None:
        self.process.terminate()
        try:
            self.process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()


def drive_closed_loop(
    client: GatewayClient,
    rows_pool: np.ndarray,
    concurrency: int,
    n_requests: int,
    timeout_s: float = 300.0,
) -> Dict[str, object]:
    """Keep ``concurrency`` single-record requests in flight until done.

    Resubmission happens in each response's completion callback (the
    connection reader thread), so offered concurrency is exact without a
    thread per request.  Returns latency percentiles, wall time and the
    mean served batch size.
    """
    lock = threading.Lock()
    finished = threading.Event()
    latencies: List[float] = []
    batch_rows: List[int] = []
    state: Dict[str, object] = {"submitted": 0, "completed": 0, "error": None}

    def submit_one() -> None:
        with lock:
            index = int(state["submitted"])
            if index >= n_requests:
                return
            state["submitted"] = index + 1
        row = rows_pool[index % rows_pool.shape[0]]
        started = time.perf_counter()
        future = client.submit(row)

        def on_done(done, started=started):
            elapsed = time.perf_counter() - started
            error = done.exception()
            with lock:
                if error is not None:
                    state["error"] = error
                    finished.set()
                    return
                latencies.append(elapsed)
                batch_rows.append(done.result().batch_rows)
                state["completed"] = int(state["completed"]) + 1
                completed = int(state["completed"])
            if completed >= n_requests:
                finished.set()
            else:
                submit_one()

        future.add_done_callback(on_done)

    wall_start = time.perf_counter()
    for _ in range(min(concurrency, n_requests)):
        submit_one()
    if not finished.wait(timeout=timeout_s):
        raise RuntimeError(f"closed loop timed out at concurrency {concurrency}")
    wall_seconds = time.perf_counter() - wall_start
    if state["error"] is not None:
        raise state["error"]
    spread = np.asarray(latencies, dtype=float) * 1e3
    return {
        "in_flight": concurrency,
        "n_requests": n_requests,
        "seconds": wall_seconds,
        "requests_per_second": n_requests / max(wall_seconds, 1e-12),
        "p50_ms": float(np.percentile(spread, 50)),
        "p99_ms": float(np.percentile(spread, 99)),
        "mean_batch_rows": float(np.mean(batch_rows)),
        "max_batch_rows_served": int(np.max(batch_rows)),
    }


def check_sequential_identity(
    client: GatewayClient, detector: GhsomDetector, X: np.ndarray
) -> bool:
    """One-at-a-time requests must be bit-for-bit the direct detect call."""
    for lo, hi in [(0, 1), (5, 6), (10, 42), (50, 178)]:
        reference = detector.detect(X[lo:hi])
        result = client.detect(X[lo:hi], timeout=60)
        if result.scores.tobytes() != reference.scores.tobytes():
            return False
        if not np.array_equal(result.predictions, reference.predictions):
            return False
        if list(result.categories) != list(reference.categories):
            return False
    return True


def run_benchmark(
    quick: bool = False, output_path: Path = OUTPUT_PATH
) -> Dict[str, object]:
    """Fit one detector, save a bundle, and drive a live gateway subprocess."""
    n_train = 1500 if quick else N_TRAIN
    per_level = QUICK_REQUESTS_PER_LEVEL if quick else REQUESTS_PER_LEVEL
    repeats = 3 if quick else 5

    generator = KddSyntheticGenerator(random_state=BENCH_SEED)
    train = generator.generate(n_train)
    test = generator.generate(2000)
    pipeline = PreprocessingPipeline()
    X_train = pipeline.fit_transform(train)
    X = pipeline.transform(test)
    overrides = {"tau2": 0.03, "min_samples_for_expansion": 25} if quick else {}
    detector = GhsomDetector(default_ghsom_config(**overrides), random_state=BENCH_SEED)
    detector.fit(X_train, [str(category) for category in train.categories])

    # In-process context figures: what one detect call costs per row when
    # called row-at-a-time vs fully batched (the two ends of the spectrum
    # the gateway interpolates between).
    single_row = np.ascontiguousarray(X[:1])
    per_record_seconds = time_best(lambda: detector.detect(single_row), repeats)
    batch_seconds = time_best(lambda: detector.detect(X), repeats)

    with tempfile.TemporaryDirectory(prefix="bench_gateway_") as tmp:
        from repro.cli import save_bundle

        bundle = Path(tmp) / "model.json"
        save_bundle(pipeline, detector, bundle, format="binary")
        gateway = LoopbackGateway(bundle)
        try:
            with GatewayClient(gateway.address) as client:
                client.ping()
                byte_identical = check_sequential_identity(client, detector, X)
                levels = [
                    drive_closed_loop(client, X, concurrency, per_level[concurrency])
                    for concurrency in CONCURRENCY_LEVELS
                ]
        finally:
            gateway.stop()

    payload: Dict[str, object] = {
        "benchmark": "gateway",
        "quick": quick,
        "seed": BENCH_SEED,
        "n_train": n_train,
        "tick_ms": TICK_MS,
        "max_batch_rows": MAX_BATCH_ROWS,
        "topology": detector._compiled_model().describe(),
        "direct": {
            "per_record_detect_rps": 1.0 / max(per_record_seconds, 1e-12),
            "batch_detect_rows_per_second": X.shape[0] / max(batch_seconds, 1e-12),
        },
        "byte_identical_sequential": byte_identical,
        "concurrency": levels,
    }
    write_json_atomic(payload, output_path)
    return payload


def print_report(payload: Dict[str, object]) -> None:
    direct = payload["direct"]
    print(
        format_table(
            [
                [
                    row["in_flight"],
                    row["n_requests"],
                    round(row["seconds"], 2),
                    int(row["requests_per_second"]),
                    round(row["p50_ms"], 2),
                    round(row["p99_ms"], 2),
                    round(row["mean_batch_rows"], 1),
                ]
                for row in payload["concurrency"]
            ],
            ["in-flight", "requests", "seconds", "req/s", "p50 ms", "p99 ms", "batch rows"],
            title=(
                f"Gateway closed-loop, tick {payload['tick_ms']} ms "
                f"(direct detect: {int(direct['per_record_detect_rps'])} req/s "
                f"row-at-a-time, {int(direct['batch_detect_rows_per_second'])} "
                f"rows/s batched; sequential identity: "
                f"{'yes' if payload['byte_identical_sequential'] else 'NO'})"
            ),
        )
    )


def test_gateway_benchmark(tmp_path):
    """Quick-mode run under pytest: the gateway acceptance gates.

    Writes its JSON to a temp dir so the committed full-run
    ``BENCH_gateway.json`` is never overwritten by a quick pass.
    """
    payload = run_benchmark(quick=True, output_path=tmp_path / "BENCH_gateway.json")
    print()
    print_report(payload)
    # Hard gate 1: the gateway adds zero numerical error — sequential
    # requests reproduce the direct detect call byte for byte.
    assert payload["byte_identical_sequential"]
    by_level = {row["in_flight"]: row for row in payload["concurrency"]}
    # Hard gate 2: micro-batching beats the sequential one-request-per-
    # detect baseline on requests/s once concurrency reaches 64.
    assert (
        by_level[64]["requests_per_second"] > by_level[1]["requests_per_second"]
    ), by_level
    assert (
        by_level[512]["requests_per_second"] > by_level[1]["requests_per_second"]
    ), by_level
    # Coalescing genuinely happened at high concurrency (without it the
    # throughput gate could pass on scheduling luck alone).
    assert by_level[64]["mean_batch_rows"] > 1.0, by_level
    # Every request at every level completed: the driver raises otherwise.
    for row in payload["concurrency"]:
        assert row["n_requests"] > 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sizes, fewer repeats")
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH, help="where to write the JSON report"
    )
    args = parser.parse_args()
    payload = run_benchmark(quick=args.quick, output_path=args.output)
    print_report(payload)
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
