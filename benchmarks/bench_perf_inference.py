"""Inference throughput — legacy recursive vs compiled flat-array scoring.

Times end-to-end batch scoring (``GhsomDetector.score_samples``) through the
compiled inference engine (:mod:`repro.core.compiled`) against the
pre-compilation reference path (recursive descent materialising one
``LeafAssignment`` per record, per-sample threshold lookups and label
folding), across GHSOM sizes and batch sizes, and writes the measurements to
``BENCH_inference.json`` at the repository root so future PRs can compare
against the recorded trajectory.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_perf_inference.py          # full
    PYTHONPATH=src python benchmarks/bench_perf_inference.py --quick  # fast

or under pytest (quick mode)::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_inference.py -s
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List

import numpy as np

from common import BENCH_SEED, default_ghsom_config, runtime_provenance, time_best

from repro.core import GhsomDetector
from repro.core import kernels
from repro.core.labeling import UNLABELED
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator
from repro.eval.tables import format_table

#: Where the machine-readable results land (repo root, next to CHANGES.md).
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_inference.json"

N_TRAIN = 4000

#: (name, config overrides) — both produce >= 3-level hierarchies on the
#: full-size synthetic KDD workload; "wide" is the evaluation-scale tree,
#: "compact" the test-fixture-scale one.
CONFIGS = (
    ("wide_depth3", {}),
    ("compact_depth3", {"max_map_size": 36, "min_samples_for_expansion": 40}),
)

#: Quick-mode line-up: the smaller training set needs laxer expansion rules
#: to still grow a 3-level tree.
QUICK_CONFIGS = (
    ("wide_depth3", {"tau2": 0.03, "min_samples_for_expansion": 25}),
    ("compact_depth2", {"max_map_size": 36, "min_samples_for_expansion": 25}),
)

FULL_BATCH_SIZES = (1000, 10000, 50000)
QUICK_BATCH_SIZES = (500, 2000)


def legacy_score_samples(detector: GhsomDetector, X: np.ndarray) -> np.ndarray:
    """The pre-compilation scoring path, preserved as the benchmark baseline.

    Recursive descent via ``Ghsom.assign_legacy`` (one dataclass per record),
    per-sample threshold normalisation through leaf-key lists, and the
    per-sample label-folding loop — exactly what ``score_samples`` did before
    the compiled engine.
    """
    assignments = detector.model.assign_legacy(X)
    distances = [assignment.distance for assignment in assignments]
    leaf_keys = [assignment.leaf_key for assignment in assignments]
    ratios = detector.threshold_.normalize(distances, leaf_keys)
    if detector.labeler is None:
        return np.asarray(ratios, dtype=float)
    scores = np.asarray(ratios, dtype=float).copy()
    for index, key in enumerate(leaf_keys):
        info = detector.labeler.info_of(key)
        if info.label not in ("normal", UNLABELED):
            scores[index] = 1.0 + info.purity + 0.01 * min(ratios[index], 10.0)
    return scores


def run_benchmark(quick: bool = False, output_path: Path = OUTPUT_PATH) -> Dict[str, object]:
    """Fit the detector line-up, time both scoring paths, write the JSON report."""
    batch_sizes = QUICK_BATCH_SIZES if quick else FULL_BATCH_SIZES
    n_train = 1500 if quick else N_TRAIN
    generator = KddSyntheticGenerator(random_state=BENCH_SEED)
    train = generator.generate(n_train)
    test = generator.generate(max(batch_sizes))
    pipeline = PreprocessingPipeline()
    X_train = pipeline.fit_transform(train)
    X_test = pipeline.transform(test)
    y_train = [str(category) for category in train.categories]

    results: List[Dict[str, object]] = []
    for name, overrides in QUICK_CONFIGS if quick else CONFIGS:
        config = default_ghsom_config(**overrides)
        detector = GhsomDetector(config, random_state=BENCH_SEED)
        detector.fit(X_train, y_train)
        topology = detector.model.compile().describe()
        compiled_model = detector._compiled_model()
        fused_available = kernels.fused_supported(
            metric=compiled_model.metric, dtype=compiled_model.dtype
        )
        # Warm both paths (first call pays compilation / BLAS warm-up).
        compiled_scores = detector.score_samples(X_test[: batch_sizes[0]])
        legacy_scores = legacy_score_samples(detector, X_test[: batch_sizes[0]])
        if fused_available:
            # Warm the fused engine too (first call compiles/loads the kernel
            # and lane-transposes the codebook once per model).
            detector.configure(detector.serving_config.evolve(engine="fused"))
            detector.score_samples(X_test[: batch_sizes[0]])
            detector.configure(detector.serving_config.evolve(engine=None))
        for batch_size in batch_sizes:
            batch = X_test[:batch_size]
            # Same repeat count for both paths: best-of-N estimates the noise
            # floor, so an asymmetric N would bias the recorded speedup.
            repeats = 2 if quick else 3
            legacy_seconds = time_best(
                lambda: legacy_score_samples(detector, batch), repeats=repeats
            )
            compiled_seconds = time_best(
                lambda: detector.score_samples(batch), repeats=repeats
            )
            identical = bool(
                np.array_equal(
                    legacy_score_samples(detector, batch), detector.score_samples(batch)
                )
            )
            row = {
                "config": name,
                "n_train": n_train,
                "depth": topology["max_depth"],
                "n_maps": topology["n_nodes"],
                "n_units": topology["n_units"],
                "n_leaves": topology["n_leaves"],
                "batch_size": batch_size,
                "legacy_seconds": legacy_seconds,
                "compiled_seconds": compiled_seconds,
                "speedup": legacy_seconds / max(compiled_seconds, 1e-12),
                "legacy_records_per_second": batch_size / max(legacy_seconds, 1e-12),
                "compiled_records_per_second": batch_size / max(compiled_seconds, 1e-12),
                "identical_scores": identical,
                # numpy-vs-fused comparison (None when no kernel provider
                # serves this metric/dtype — e.g. the numba-free CI legs).
                "fused_seconds": None,
                "fused_records_per_second": None,
                "fused_speedup_vs_numpy": None,
                "fused_leaves_identical": None,
                "fused_max_rel_drift": None,
            }
            if fused_available:
                numpy_result = detector.detect(batch)
                detector.configure(detector.serving_config.evolve(engine="fused"))
                try:
                    fused_seconds = time_best(
                        lambda: detector.score_samples(batch), repeats=repeats
                    )
                    fused_result = detector.detect(batch)
                finally:
                    detector.configure(detector.serving_config.evolve(engine=None))
                drift = np.abs(fused_result.scores - numpy_result.scores) / np.maximum(
                    np.abs(numpy_result.scores), 1e-30
                )
                row.update(
                    {
                        "fused_seconds": fused_seconds,
                        "fused_records_per_second": batch_size / max(fused_seconds, 1e-12),
                        "fused_speedup_vs_numpy": compiled_seconds / max(fused_seconds, 1e-12),
                        "fused_leaves_identical": bool(
                            np.array_equal(fused_result.leaf_index, numpy_result.leaf_index)
                        ),
                        "fused_max_rel_drift": float(drift.max()) if drift.size else 0.0,
                    }
                )
            results.append(row)

    payload = {
        "benchmark": "inference_throughput",
        "quick": quick,
        "seed": BENCH_SEED,
        "n_train": n_train,
        # Engine/provider/hardware context: throughput rows are read against
        # what executed them (fused provider, numba version, CPU budget).
        "provenance": runtime_provenance(),
        "results": results,
    }
    output_path.write_text(json.dumps(payload, indent=2))
    return payload


def print_report(payload: Dict[str, object]) -> None:
    """Render the JSON payload as the usual benchmark table."""
    rows = [
        [
            result["config"],
            result["depth"],
            result["n_leaves"],
            result["batch_size"],
            result["legacy_seconds"],
            result["compiled_seconds"],
            round(result["speedup"], 1),
            int(result["compiled_records_per_second"]),
            "-"
            if result.get("fused_records_per_second") is None
            else int(result["fused_records_per_second"]),
            "-"
            if result.get("fused_speedup_vs_numpy") is None
            else round(result["fused_speedup_vs_numpy"], 2),
            "yes" if result["identical_scores"] else "NO",
        ]
        for result in payload["results"]
    ]
    provider = (payload.get("provenance") or {}).get("fused_provider")
    print(
        format_table(
            rows,
            [
                "config",
                "depth",
                "leaves",
                "batch",
                "legacy_s",
                "compiled_s",
                "speedup",
                "compiled_rec/s",
                "fused_rec/s",
                "fused_x",
                "identical",
            ],
            title=(
                "Inference throughput: legacy recursive vs compiled flat-array "
                f"scoring (fused provider: {provider or 'none'})"
            ),
        )
    )


def test_perf_inference(benchmark, tmp_path):
    """Quick-mode run under pytest: correctness gate plus a timed kernel.

    Writes its JSON to a temp dir so the committed full-run
    ``BENCH_inference.json`` is never overwritten by a quick pass (use the
    CLI to refresh the real artifact).
    """
    payload = run_benchmark(quick=True, output_path=tmp_path / "BENCH_inference.json")
    print()
    print_report(payload)
    results = payload["results"]
    # The compiled path must reproduce legacy scores exactly...
    assert all(result["identical_scores"] for result in results)
    # ...and must never be slower than the legacy path on any measured cell.
    assert all(result["speedup"] > 1.0 for result in results)
    # Deep trees are the target workload: the engine compiles >= 3 levels.
    assert max(result["depth"] for result in results) >= 3

    generator = KddSyntheticGenerator(random_state=BENCH_SEED)
    train = generator.generate(1500)
    pipeline = PreprocessingPipeline()
    X_train = pipeline.fit_transform(train)
    detector = GhsomDetector(default_ghsom_config(), random_state=BENCH_SEED)
    detector.fit(X_train, [str(category) for category in train.categories])
    X_score = pipeline.transform(generator.generate(2000))
    detector.score_samples(X_score)  # warm
    benchmark.pedantic(lambda: detector.score_samples(X_score), rounds=3, iterations=1)


def test_perf_fused_engine(tmp_path):
    """Quick-mode gate for the fused descent kernel.

    Runs on whatever kernel provider resolves on this machine (runtime-
    compiled C where a compiler exists, else numba); skipped entirely when no
    provider serves float64/euclidean — the numba-free CI legs prove the
    numpy fallback instead.  Gates: exact leaf agreement, score drift within
    the documented tolerance, and >= 1.5x throughput over the numpy engine
    on the largest quick batch (the full-run artifact records >= 2x; the
    quick batch is dominated more by fixed per-call costs, so the pytest
    gate is deliberately looser).
    """
    import pytest

    if not kernels.fused_supported("euclidean", np.float64):
        pytest.skip(
            f"no fused kernel provider available: {kernels.provider_diagnostics()}"
        )
    payload = run_benchmark(quick=True, output_path=tmp_path / "BENCH_inference.json")
    print()
    print_report(payload)
    rows = [row for row in payload["results"] if row["fused_seconds"] is not None]
    assert rows, "fused provider available but no fused rows were measured"
    rtol = kernels.FUSED_DISTANCE_RTOL["float64"]
    for row in rows:
        assert row["fused_leaves_identical"], row
        assert row["fused_max_rel_drift"] <= rtol, row
    largest = max(rows, key=lambda row: row["batch_size"])
    assert largest["fused_speedup_vs_numpy"] >= 1.5, largest


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sizes, fewer repeats")
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH, help="where to write the JSON report"
    )
    args = parser.parse_args()
    payload = run_benchmark(quick=args.quick, output_path=args.output)
    print_report(payload)
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
