"""Sharded-serving benchmark — root-subtree shards behind the batch router.

Measures the sharded engine of :mod:`repro.serving` against the unsharded
compiled engine on a repeated batch workload (10k records per batch in the
full run) and writes the results to ``BENCH_sharded.json`` at the repository
root:

* **equivalence** — every configuration's scores must be byte-identical to
  the unsharded float64 engine (this is the hard gate: sharding is an
  execution-plan change, not an approximation);
* **overhead** — the serial sharded path vs the unsharded engine isolates
  the routing + merge cost;
* **parallel throughput** — the thread and process backends at K ∈ {2, 4, 8}
  shards.  Parallel speedup obviously needs cores: the run records the
  machine's usable CPU count, and the pytest gate only demands the >= 1.5x
  speedup at K >= 4 when at least 4 usable cores exist (on smaller machines
  it still gates byte-identity and bounded overhead).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sharded.py          # full
    PYTHONPATH=src python benchmarks/bench_sharded.py --quick  # fast

or under pytest (quick mode)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharded.py -s
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Dict, List

import numpy as np

from common import (
    BENCH_SEED,
    blas_threads_env,
    default_ghsom_config,
    time_best,
    usable_cpus,
)

from repro.core import GhsomDetector
from repro.core import kernels
from repro.core.serialization import write_json_atomic
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator
from repro.eval.tables import format_table
from repro.serving import ShardedGhsom, subtrees_from_compiled

#: Where the machine-readable results land (repo root, next to CHANGES.md).
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"

N_TRAIN = 4000
#: The acceptance workload: one batch, scored repeatedly.
FULL_BATCH_SIZE = 10000
QUICK_BATCH_SIZE = 2000

#: (backend, n_shards, workers) configurations measured against the
#: unsharded baseline.  Worker counts are explicit for every pooled config:
#: a ``None`` here would silently mean "usable cores", which on a small
#: machine under-provisions the K=8 row and mis-reports the parallelism the
#: numbers were measured at.
FULL_CONFIGS = (
    ("serial", 4, None),
    ("thread", 2, 2),
    ("thread", 4, 4),
    ("thread", 8, 8),
    ("process", 4, 4),
)
QUICK_CONFIGS = (
    ("serial", 4, None),
    ("thread", 4, 4),
)


def run_benchmark(
    quick: bool = False,
    output_path: Path = OUTPUT_PATH,
    batch_size: int = 0,
) -> Dict[str, object]:
    """Fit one detector, then race the sharded configurations on one batch."""
    batch_size = batch_size or (QUICK_BATCH_SIZE if quick else FULL_BATCH_SIZE)
    n_train = 1500 if quick else N_TRAIN
    repeats = 3 if quick else 5
    configs = QUICK_CONFIGS if quick else FULL_CONFIGS

    generator = KddSyntheticGenerator(random_state=BENCH_SEED)
    train = generator.generate(n_train)
    test = generator.generate(batch_size)
    pipeline = PreprocessingPipeline()
    X_train = pipeline.fit_transform(train)
    batch = pipeline.transform(test)
    overrides = {"tau2": 0.03, "min_samples_for_expansion": 25} if quick else {}
    detector = GhsomDetector(default_ghsom_config(**overrides), random_state=BENCH_SEED)
    detector.fit(X_train, [str(category) for category in train.categories])
    compiled = detector.model.compile()
    n_subtrees = len(subtrees_from_compiled(compiled))

    # Unsharded single-process baseline (warmed before timing).
    reference = compiled.assign_arrays(batch)
    baseline_seconds = time_best(lambda: compiled.assign_arrays(batch), repeats)

    rows: List[Dict[str, object]] = []

    def measure(backend, n_shards, workers, compute_engine=None):
        engine = ShardedGhsom.from_compiled(
            compiled, n_shards, backend=backend, workers=workers, engine=compute_engine
        )
        try:
            leaf, dist = engine.assign_arrays(batch)  # also warms pools
            identical = bool(
                np.array_equal(leaf, reference[0]) and np.array_equal(dist, reference[1])
            )
            seconds = time_best(lambda: engine.assign_arrays(batch), repeats)
            rows.append(
                {
                    "backend": backend,
                    "engine": compute_engine or "numpy",
                    "n_shards_requested": n_shards,
                    "n_shards_effective": engine.n_shards,
                    "workers": engine.backend.workers,
                    "seconds": seconds,
                    "records_per_second": batch_size / max(seconds, 1e-12),
                    "speedup_vs_unsharded": baseline_seconds / max(seconds, 1e-12),
                    "byte_identical": identical,
                    # The fused engine's contract is leaf-exact + bounded
                    # distance drift, not byte identity; record both so the
                    # gates can be engine-appropriate.
                    "leaves_identical": bool(np.array_equal(leaf, reference[0])),
                }
            )
        finally:
            engine.close()

    for backend, n_shards, workers in configs:
        measure(backend, n_shards, workers)
    # One fused row: the same serial shard layout with each shard's descent
    # running the fused kernel (skipped when no provider serves this
    # metric/dtype — e.g. the numba-free CI legs).
    if kernels.fused_supported(metric=compiled.metric, dtype=compiled.dtype):
        measure("serial", 4, None, compute_engine="fused")

    payload = {
        "benchmark": "sharded_serving",
        "quick": quick,
        "seed": BENCH_SEED,
        "n_train": n_train,
        "batch_size": batch_size,
        "n_cpus": usable_cpus(),
        # Parallel speedup is only meaningful against a single-threaded
        # baseline; CI pins these to 1 for the gate run.
        "blas_threads_env": blas_threads_env(),
        "topology": compiled.describe(),
        "n_root_subtrees": n_subtrees,
        "unsharded": {
            "seconds": baseline_seconds,
            "records_per_second": batch_size / max(baseline_seconds, 1e-12),
        },
        "sharded": rows,
    }
    write_json_atomic(payload, output_path)
    return payload


def print_report(payload: Dict[str, object]) -> None:
    """Render the JSON payload as the usual benchmark tables."""
    unsharded = payload["unsharded"]
    print(
        format_table(
            [
                [
                    row["backend"],
                    row.get("engine", "numpy"),
                    f"{row['n_shards_effective']}/{row['n_shards_requested']}",
                    row["workers"],
                    row["seconds"],
                    int(row["records_per_second"]),
                    round(row["speedup_vs_unsharded"], 2),
                    "yes" if row["byte_identical"] else "NO",
                ]
                for row in payload["sharded"]
            ],
            ["backend", "engine", "shards", "workers", "seconds", "rec/s", "speedup", "identical"],
            title=(
                f"Sharded serving on a {payload['batch_size']}-record batch "
                f"({payload['n_cpus']} usable CPUs; unsharded baseline "
                f"{int(unsharded['records_per_second'])} rec/s)"
            ),
        )
    )


def test_sharded_benchmark(tmp_path):
    """Quick-mode run under pytest: the acceptance gates for sharded serving.

    Writes its JSON to a temp dir so the committed full-run
    ``BENCH_sharded.json`` is never overwritten by a quick pass (use the CLI
    to refresh the real artifact).
    """
    payload = run_benchmark(quick=True, output_path=tmp_path / "BENCH_sharded.json")
    print()
    print_report(payload)
    # Hard gate: every numpy configuration reproduces the unsharded engine
    # exactly; a fused row only promises exact leaves (distances carry the
    # documented kernel drift).
    for row in payload["sharded"]:
        if row.get("engine", "numpy") == "numpy":
            assert row["byte_identical"], row
        else:
            assert row["leaves_identical"], row
    # The routing + merge machinery must not dominate: the serial sharded
    # path stays within 2.5x of the unsharded engine on this small workload.
    serial_rows = [row for row in payload["sharded"] if row["backend"] == "serial"]
    for row in serial_rows:
        assert row["speedup_vs_unsharded"] > 0.4, row
    # Parallel speedup needs parallel hardware: demand the 1.5x only when the
    # machine actually has >= 4 usable cores (CI runners do; a 1-core
    # container cannot speed up a compute-bound workload by threading).  The
    # speedup run uses the full-size batch so per-shard GEMMs dominate
    # dispatch overhead — the quick batch above only gates correctness.
    if usable_cpus() >= 4:
        # One retry absorbs a transiently loaded shared runner; a genuine
        # parallel-scaling regression fails on both attempts.
        best = 0.0
        for attempt in range(2):
            speedup_payload = run_benchmark(
                quick=True,
                output_path=tmp_path / f"BENCH_sharded_speedup_{attempt}.json",
                batch_size=FULL_BATCH_SIZE,
            )
            print()
            print_report(speedup_payload)
            for row in speedup_payload["sharded"]:
                if row.get("engine", "numpy") == "numpy":
                    assert row["byte_identical"], row
                else:
                    assert row["leaves_identical"], row
            best = max(
                best,
                max(
                    (
                        row["speedup_vs_unsharded"]
                        for row in speedup_payload["sharded"]
                        if row["backend"] != "serial"
                        and row["n_shards_effective"]
                        >= min(4, speedup_payload["n_root_subtrees"])
                    ),
                    default=0.0,
                ),
            )
            if best >= 1.5:
                break
        assert best >= 1.5, (
            f"expected >= 1.5x sharded speedup on {usable_cpus()} CPUs, got {best:.2f}x"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sizes, fewer repeats")
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH, help="where to write the JSON report"
    )
    args = parser.parse_args()
    payload = run_benchmark(quick=args.quick, output_path=args.output)
    print_report(payload)
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
