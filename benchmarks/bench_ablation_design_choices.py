"""Ablation — the design choices DESIGN.md calls out.

Not a table/figure of the paper itself, but the ablation study backing the
design decisions of this reproduction:

* unit **labelling rule** (majority vs purity-escalation),
* **threshold strategy** (global vs per-unit) — the one-class view of this is
  in Figure 2b; here the labelled-mode effect is measured,
* **calibration set** (thresholds calibrated on normal-only vs all training
  records),
* single GHSOM vs a 3-member **ensemble**.

The timed kernel is one detector fit of the reference configuration.
"""

from __future__ import annotations

from common import default_ghsom_config, make_supervised_workload

from repro.core import GhsomDetector
from repro.core.ensemble import EnsembleDetector
from repro.eval.metrics import binary_metrics, roc_auc
from repro.eval.tables import format_table


def _measure(name, detector, workload, rows):
    detector.fit(workload["X_train"], workload["y_train"])
    predictions = detector.predict(workload["X_test"])
    scores = detector.score_samples(workload["X_test"])
    metrics = binary_metrics(workload["y_test"], predictions)
    rows.append(
        [
            name,
            metrics.detection_rate,
            metrics.false_positive_rate,
            metrics.f1,
            roc_auc(workload["y_test"], scores),
        ]
    )
    return metrics


def test_ablation_design_choices(benchmark):
    workload = make_supervised_workload(n_train=3000, n_test=1500)
    rows = []

    reference = GhsomDetector(default_ghsom_config(), random_state=0)
    reference_metrics = _measure("reference (majority, per-unit, normal-only)", reference, workload, rows)

    purity = GhsomDetector(default_ghsom_config(), labeling_strategy="purity", random_state=0)
    _measure("labelling: purity escalation", purity, workload, rows)

    global_threshold = GhsomDetector(
        default_ghsom_config(), threshold_strategy="global", random_state=0
    )
    _measure("threshold: global", global_threshold, workload, rows)

    all_calibration = GhsomDetector(
        default_ghsom_config(), calibrate_on_normal_only=False, random_state=0
    )
    all_calibration_metrics = _measure("calibration: all training records", all_calibration, workload, rows)

    ensemble = EnsembleDetector(
        [
            lambda seed=seed: GhsomDetector(
                default_ghsom_config(random_state=seed), random_state=seed
            )
            for seed in (0, 1, 2)
        ]
    )
    ensemble_metrics = _measure("ensemble of 3 GHSOMs (mean score)", ensemble, workload, rows)

    benchmark.pedantic(
        lambda: GhsomDetector(default_ghsom_config(), random_state=0).fit(
            workload["X_train"], workload["y_train"]
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        format_table(
            rows,
            ["variant", "DR", "FPR", "F1", "AUC"],
            title="Ablation: labelling rule, threshold strategy, calibration set, ensembling",
        )
    )

    # Shape assertions: every variant remains a working detector...
    for row in rows:
        assert row[1] > 0.9, f"{row[0]} detection rate collapsed"
        assert row[2] < 0.15, f"{row[0]} false-positive rate exploded"
    # ...and the ensemble is at least as accurate (F1) as the single model, within noise.
    assert ensemble_metrics.f1 >= reference_metrics.f1 - 0.02
    # Calibrating thresholds on attack-polluted data must not *improve* FPR
    # (it inflates thresholds, so FPR can only stay equal or drop along with DR).
    assert all_calibration_metrics.false_positive_rate <= reference_metrics.false_positive_rate + 0.02
