"""Figure 3 — map growth curve: units and mean quantization error per growth round.

Regenerates the growth-dynamics figure: the root GHSOM layer is trained on
the traffic matrix and its growth history (units, rows x cols, MQE after each
insertion, and what was inserted) is printed round by round.  The timed kernel
is the growing-layer fit.

Expected shape: the number of units increases monotonically while the MQE
decreases towards the tau1 target.
"""

from __future__ import annotations

import numpy as np

from common import default_ghsom_config, make_supervised_workload

from repro.core import GrowingSom
from repro.core.quantization import dataset_quantization_error
from repro.eval.tables import format_table


def test_fig3_growth_curve(benchmark):
    workload = make_supervised_workload(n_train=3000, n_test=200)
    X_train = workload["X_train"]
    config = default_ghsom_config(tau1=0.2, max_map_size=120, max_growth_rounds=40)
    qe0 = dataset_quantization_error(X_train)

    def fit_layer():
        layer = GrowingSom(
            n_features=X_train.shape[1], config=config, parent_qe=qe0, random_state=0
        )
        layer.fit(X_train)
        return layer

    layer = benchmark.pedantic(fit_layer, rounds=1, iterations=1)

    rows = [
        [
            event.round_index,
            f"{event.rows}x{event.cols}",
            event.n_units,
            event.mqe,
            event.mqe / qe0,
            event.inserted,
        ]
        for event in layer.growth_history
    ]
    print()
    print(f"qe0 (dataset quantization error) = {qe0:.4f}; target MQE = {layer.mqe_target:.4f}")
    print(
        format_table(
            rows,
            ["round", "shape", "units", "MQE", "MQE/qe0", "inserted"],
            title="Figure 3: root-layer growth trajectory",
        )
    )

    units = [event.n_units for event in layer.growth_history]
    mqes = [event.mqe for event in layer.growth_history]
    assert all(b >= a for a, b in zip(units, units[1:], strict=False))
    assert len(units) >= 3, "the layer must actually grow on this workload"
    assert mqes[-1] < mqes[0]
    # Growth terminated for a reason: either the target was met or a cap hit.
    final = layer.growth_history[-1]
    assert (
        final.mqe <= layer.mqe_target
        or final.n_units + max(final.rows, final.cols) > config.max_map_size
        or final.round_index >= config.max_growth_rounds
    )
