"""Table 1 — dataset composition.

Regenerates the dataset-description table of the evaluation: number of records
per traffic class (and per category) in the training and test splits, plus the
overall attack fraction.  The timed kernel is the synthetic dataset generation
itself (the stand-in for loading the public KDD files).
"""

from __future__ import annotations

from collections import Counter

from common import BENCH_SEED, N_TEST, N_TRAIN, make_supervised_workload

from repro.data.synthetic import KddSyntheticGenerator
from repro.eval.tables import format_table


def test_table1_dataset_composition(benchmark):
    workload = make_supervised_workload()
    train, test = workload["train"], workload["test"]

    def generate():
        return KddSyntheticGenerator(random_state=BENCH_SEED).generate(N_TRAIN)

    benchmark(generate)

    train_by_label = Counter(map(str, train.labels))
    test_by_label = Counter(map(str, test.labels))
    train_by_category = train.class_counts()
    test_by_category = test.class_counts()

    label_rows = [
        [label, train_by_label.get(label, 0), test_by_label.get(label, 0)]
        for label in sorted(set(train_by_label) | set(test_by_label))
    ]
    category_rows = [
        [category, train_by_category.get(category, 0), test_by_category.get(category, 0)]
        for category in ("normal", "dos", "probe", "r2l", "u2r")
    ]
    print()
    print(format_table(label_rows, ["class", "train", "test"], title="Table 1a: records per class"))
    print()
    print(
        format_table(
            category_rows, ["category", "train", "test"], title="Table 1b: records per category"
        )
    )
    print()
    print(
        format_table(
            [
                ["train", len(train), float(train.is_attack.mean())],
                ["test", len(test), float(test.is_attack.mean())],
            ],
            ["split", "records", "attack_fraction"],
            title="Table 1c: split sizes",
        )
    )

    assert len(train) == N_TRAIN and len(test) == N_TEST
    assert set(train_by_category) == {"normal", "dos", "probe", "r2l", "u2r"}
