"""Figure 6 — online detection under benign concept drift.

Regenerates the streaming experiment: a two-phase traffic stream whose normal
traffic drifts (heavier volumes) halfway through is replayed through (a) a
static GHSOM detector and (b) the adaptive online wrapper.  The printed series
is the per-window false-positive rate and detection rate over stream time for
both runs.  The timed kernel is processing one stream window with the online
detector.

Expected shape: after the drift point the static detector's false-positive
rate rises sharply while the adaptive detector's recovers; detection rate
stays high for both.
"""

from __future__ import annotations

import numpy as np

from common import BENCH_SEED, default_ghsom_config

from repro.core import GhsomDetector

from repro.data.synthetic import KddSyntheticGenerator
from repro.eval.tables import format_series
from repro.streaming import OnlineDetector, StreamingPipeline
from repro.streaming.pipeline import make_drifting_stream

WINDOW = 500
N_BEFORE = 3000
N_AFTER = 3000


def _run(adaptation: str, X, y, X_calibration):
    detector = GhsomDetector(default_ghsom_config(), random_state=0)
    detector.fit(X_calibration)
    online = OnlineDetector(detector, adaptation=adaptation, ewma_alpha=0.05)
    pipeline = StreamingPipeline(online, window_size=WINDOW)
    return pipeline.run(X, y)


def test_fig6_online_drift(benchmark):
    X, y, drift_index = make_drifting_stream(
        lambda seed: KddSyntheticGenerator(random_state=seed),
        n_before=N_BEFORE,
        n_after=N_AFTER,
        drift_scale=2.5,
        attack_fraction=0.1,
        random_state=BENCH_SEED,
    )
    # Calibrate on the clean (pre-drift) normal records of the stream itself —
    # exactly what an operator would do with a vetted historical window.
    pre_drift_normal = X[:drift_index][y[:drift_index] == 0]
    X_calibration = pre_drift_normal[:3000]

    static_reports = _run("none", X, y, X_calibration)
    adaptive_reports = _run("threshold", X, y, X_calibration)

    detector = GhsomDetector(default_ghsom_config(), random_state=0)
    detector.fit(X_calibration)
    online = OnlineDetector(detector, adaptation="threshold")
    benchmark(lambda: online.process(X[:WINDOW]))

    windows = [report.window_index for report in static_reports]
    print()
    print(f"drift begins at record {drift_index} (window {drift_index // WINDOW})")
    print(
        format_series(
            windows,
            {
                "static_FPR": [report.false_positive_rate for report in static_reports],
                "adaptive_FPR": [report.false_positive_rate for report in adaptive_reports],
                "static_DR": [report.detection_rate for report in static_reports],
                "adaptive_DR": [report.detection_rate for report in adaptive_reports],
            },
            x_label="window",
            title="Figure 6: per-window FPR and DR, static vs adaptive, benign drift at mid-stream",
        )
    )

    drift_window = drift_index // WINDOW
    static_fpr_after = float(
        np.mean([report.false_positive_rate for report in static_reports[drift_window:]])
    )
    adaptive_fpr_after = float(
        np.mean([report.false_positive_rate for report in adaptive_reports[drift_window:]])
    )
    static_fpr_before = float(
        np.mean([report.false_positive_rate for report in static_reports[:drift_window]])
    )
    # Shape: drift hurts the static detector's FPR, and adaptation reduces that damage.
    assert static_fpr_after > static_fpr_before
    assert adaptive_fpr_after <= static_fpr_after + 1e-9
    # Attacks keep being detected throughout for the adaptive run.
    adaptive_dr = float(np.mean([report.detection_rate for report in adaptive_reports]))
    assert adaptive_dr > 0.75
