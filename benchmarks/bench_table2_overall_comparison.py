"""Table 2 — overall detection comparison (GHSOM vs baselines).

Regenerates the headline table: detection rate, false-positive rate,
precision, F1, accuracy and ROC-AUC for the GHSOM detector and the four
baselines on the shared mixed-traffic split.  The timed kernel is GHSOM
training (the dominant cost of the proposed system).

Expected shape (from the paper's claims): GHSOM reaches a detection rate at
least on par with the flat SOM and k-means at a comparable or lower
false-positive rate.
"""

from __future__ import annotations

from common import make_detectors, make_supervised_workload

from repro.core import GhsomDetector
from repro.eval.experiments import DetectorResult, evaluate_detector
from repro.eval.tables import format_table


def test_table2_overall_comparison(benchmark):
    workload = make_supervised_workload()
    detectors = make_detectors()

    results = {}
    for name, detector in detectors.items():
        results[name] = evaluate_detector(
            detector,
            workload["X_train"],
            workload["y_train"],
            workload["X_test"],
            workload["test_categories"],
        )

    # Timed kernel: training the proposed GHSOM detector from scratch.
    ghsom_for_timing = make_detectors()["ghsom"]
    assert isinstance(ghsom_for_timing, GhsomDetector)
    benchmark.pedantic(
        lambda: ghsom_for_timing.fit(workload["X_train"], workload["y_train"]),
        rounds=1,
        iterations=1,
    )

    rows = [results[name].summary_row() for name in ("ghsom", "som", "kmeans", "pca", "knn")]
    print()
    print(
        format_table(
            rows,
            DetectorResult.summary_headers(),
            title="Table 2: overall detection performance (labelled training)",
        )
    )

    ghsom = results["ghsom"].metrics
    som = results["som"].metrics
    kmeans = results["kmeans"].metrics
    # Shape assertions: the proposed detector is competitive with or better
    # than the clustering baselines.
    assert ghsom.detection_rate >= som.detection_rate - 0.05
    assert ghsom.detection_rate >= kmeans.detection_rate - 0.05
    assert ghsom.false_positive_rate < 0.1
    assert results["ghsom"].roc_auc > 0.9
