"""Figure 5 — training / detection cost vs training-set size.

Regenerates the scalability figure: wall-clock training time, scoring time and
throughput of the GHSOM detector as the training set grows, with the k-NN
baseline included as the scalability foil (its scoring cost grows with the
reference-set size, the GHSOM's does not).  The timed kernel is a GHSOM fit at
the largest size.

Expected shape: GHSOM training time grows roughly linearly with the training
set; GHSOM per-record scoring cost stays flat while k-NN scoring cost grows.
"""

from __future__ import annotations

import numpy as np

from common import BENCH_SEED, default_ghsom_config, make_supervised_workload

from repro.baselines import KnnDetector
from repro.core import GhsomDetector
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator
from repro.eval.tables import format_table
from repro.utils.timer import Stopwatch

SIZES = (1000, 2000, 4000, 8000)
N_SCORE = 2000


def _measure(detector_factory, sizes):
    rows = []
    for size in sizes:
        generator = KddSyntheticGenerator(random_state=BENCH_SEED)
        train = generator.generate(int(size))
        test = generator.generate(N_SCORE)
        pipeline = PreprocessingPipeline()
        X_train = pipeline.fit_transform(train)
        X_test = pipeline.transform(test)
        detector = detector_factory()
        watch = Stopwatch()
        with watch.measure("fit"):
            detector.fit(X_train, [str(category) for category in train.categories])
        with watch.measure("score"):
            detector.predict(X_test)
        rows.append(
            {
                "n_train": int(size),
                "fit_seconds": watch.total("fit"),
                "score_seconds": watch.total("score"),
                "train_records_per_second": size / max(watch.total("fit"), 1e-9),
                "score_records_per_second": N_SCORE / max(watch.total("score"), 1e-9),
            }
        )
    return rows


def test_fig5_scalability(benchmark):
    ghsom_rows = _measure(
        lambda: GhsomDetector(default_ghsom_config(), random_state=0), SIZES
    )
    knn_rows = _measure(
        lambda: KnnDetector(max_reference_size=100_000, random_state=0), SIZES
    )

    workload = make_supervised_workload(n_train=SIZES[-1], n_test=200)
    benchmark.pedantic(
        lambda: GhsomDetector(default_ghsom_config(), random_state=0).fit(
            workload["X_train"], workload["y_train"]
        ),
        rounds=1,
        iterations=1,
    )

    print()
    table = []
    for ghsom_row, knn_row in zip(ghsom_rows, knn_rows, strict=True):
        table.append(
            [
                ghsom_row["n_train"],
                ghsom_row["fit_seconds"],
                ghsom_row["score_seconds"],
                int(ghsom_row["score_records_per_second"]),
                knn_row["fit_seconds"],
                knn_row["score_seconds"],
                int(knn_row["score_records_per_second"]),
            ]
        )
    print(
        format_table(
            table,
            [
                "n_train",
                "ghsom_fit_s",
                "ghsom_score_s",
                "ghsom_score_rec/s",
                "knn_fit_s",
                "knn_score_s",
                "knn_score_rec/s",
            ],
            title=f"Figure 5: cost vs training-set size (scoring {N_SCORE} records)",
        )
    )

    # Shape: GHSOM training cost increases with data size but stays laptop-scale.
    fit_times = [row["fit_seconds"] for row in ghsom_rows]
    assert fit_times[-1] > fit_times[0]
    assert fit_times[-1] < 300.0
    # Shape: GHSOM scoring throughput does not collapse as training data grows
    # (prototype-based inference), staying within a factor ~3 across sizes.
    ghsom_throughputs = [row["score_records_per_second"] for row in ghsom_rows]
    assert max(ghsom_throughputs) / max(min(ghsom_throughputs), 1e-9) < 20.0
