"""Serving benchmark — model artifacts (v1/v2/v3) and the one-pass detect API.

Measures the serving-path costs PR 2 and PR 4 target and writes them to
``BENCH_serving.json`` at the repository root:

* **cold-load-to-first-score latency** — parse a saved detector artifact and
  score one batch.  A v1 artifact rebuilds the whole Python ``GhsomNode``
  tree and recompiles it before the first score; a v2 artifact hydrates the
  compiled flat arrays directly (zero ``GhsomNode`` constructions — the run
  records whether the tree ever materialised); a v3 artifact additionally
  skips the JSON array parse entirely, memory-mapping its ``.npz`` sidecar
  so only metadata is read before the first score.  Every format must score
  byte-identically to the in-memory detector — for v3 this is additionally
  checked across the sharded load paths (serial / thread / process).
* **detect throughput** — one :meth:`GhsomDetector.detect` pass versus the
  legacy three separate calls (``predict`` + ``score_samples`` +
  ``predict_category``), i.e. three tree descents versus one; plus the
  opt-in float32 serving mode with its observed score drift.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving.py          # full
    PYTHONPATH=src python benchmarks/bench_serving.py --quick  # fast

or under pytest (quick mode)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -s
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from common import BENCH_SEED, default_ghsom_config, time_best

from repro.core import GhsomDetector
from repro.core.serialization import (
    detector_from_dict,
    detector_to_dict,
    load_detector,
    save_detector,
    sidecar_path_for,
    write_json_atomic,
)
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator
from repro.eval.tables import format_table
from repro.serving import ServingConfig, ShardingSpec

#: Where the machine-readable results land (repo root, next to CHANGES.md).
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

N_TRAIN = 4000
FULL_BATCH_SIZES = (1000, 10000, 50000)
QUICK_BATCH_SIZES = (500, 2000)
#: Batch scored immediately after a cold load (a realistic first request).
FIRST_SCORE_BATCH = 256


def three_pass_detect(detector: GhsomDetector, X: np.ndarray):
    """The pre-detect() serving path: one tree descent per output."""
    predictions = detector.predict(X)
    scores = detector.score_samples(X)
    categories = detector.predict_category(X)
    return predictions, scores, categories


def _measure_cold_load(path: Path, X_first: np.ndarray, repeats: int) -> Dict[str, object]:
    """Parse ``path``, build a detector, score one batch; best-of-``repeats``."""
    tree_materialized = True
    elapsed = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        detector = load_detector(path)
        detector.detect(X_first)
        elapsed = min(elapsed, time.perf_counter() - started)
        tree_materialized = detector.tree_is_materialized
    return {"seconds": elapsed, "tree_materialized": tree_materialized}


def run_benchmark(quick: bool = False, output_path: Path = OUTPUT_PATH) -> Dict[str, object]:
    """Fit one detector, save v1/v2 artifacts, time loads and detect paths."""
    batch_sizes = QUICK_BATCH_SIZES if quick else FULL_BATCH_SIZES
    n_train = 1500 if quick else N_TRAIN
    repeats = 3 if quick else 5
    generator = KddSyntheticGenerator(random_state=BENCH_SEED)
    train = generator.generate(n_train)
    test = generator.generate(max(batch_sizes))
    pipeline = PreprocessingPipeline()
    X_train = pipeline.fit_transform(train)
    X_test = pipeline.transform(test)
    overrides = {"tau2": 0.03, "min_samples_for_expansion": 25} if quick else {}
    detector = GhsomDetector(default_ghsom_config(**overrides), random_state=BENCH_SEED)
    detector.fit(X_train, [str(category) for category in train.categories])
    topology = detector.model.compile().describe()
    reference = detector.detect(X_test)  # also warms BLAS / the compiled path

    # ---------------- cold-load-to-first-score latency ---------------- #
    cold_load: Dict[str, object] = {}
    sharded_identity: Dict[str, bool] = {}
    with tempfile.TemporaryDirectory() as artifact_dir:
        artifacts = {
            "v1": Path(artifact_dir) / "detector_v1.json",
            "v2": Path(artifact_dir) / "detector_v2.json",
            "v3": Path(artifact_dir) / "detector_v3.json",
        }
        write_json_atomic(detector_to_dict(detector, version=1), artifacts["v1"])
        write_json_atomic(detector_to_dict(detector, version=2), artifacts["v2"])
        save_detector(detector, artifacts["v3"], format="binary")
        sidecar_path = sidecar_path_for(artifacts["v3"])
        X_first = X_test[:FIRST_SCORE_BATCH]
        for version, path in artifacts.items():
            measured = _measure_cold_load(path, X_first, repeats)
            loaded = load_detector(path)
            scores = loaded.detect(X_test).scores
            artifact_bytes = path.stat().st_size
            entry = {
                "artifact_bytes": artifact_bytes,
                "cold_load_to_first_score_seconds": measured["seconds"],
                "tree_materialized_after_score": measured["tree_materialized"],
                "scores_byte_identical_to_in_memory": bool(
                    np.array_equal(scores, reference.scores)
                ),
            }
            if version == "v3":
                entry["sidecar_bytes"] = sidecar_path.stat().st_size
                entry["artifact_bytes"] = artifact_bytes + entry["sidecar_bytes"]
                entry["json_bytes"] = artifact_bytes
                # Structural proof the lazy path is in use (a regression to
                # eager array reads flips this deterministically, no timing
                # noise involved).
                entry["codebook_memory_mapped"] = isinstance(
                    loaded._compiled.codebook, np.memmap
                )
            cold_load[version] = entry
        # v3 must stay byte-identical through every sharded load path too:
        # the shard slices are views into the file mapping, so this also
        # exercises the mmap-backed shard engine end to end.
        for backend in ("serial", "thread", "process"):
            loaded = load_detector(artifacts["v3"])
            loaded.configure(
                ServingConfig(
                    sharding=ShardingSpec(
                        shards=4,
                        backend=backend,
                        workers=None if backend == "serial" else 2,
                    )
                )
            )
            try:
                sharded_scores = loaded.detect(X_test).scores
            finally:
                loaded.configure(ServingConfig())
            sharded_identity[backend] = bool(
                np.array_equal(sharded_scores, reference.scores)
            )
    cold_load["speedup_v2_over_v1"] = (
        cold_load["v1"]["cold_load_to_first_score_seconds"]
        / max(cold_load["v2"]["cold_load_to_first_score_seconds"], 1e-12)
    )
    cold_load["speedup_v3_over_v2"] = (
        cold_load["v2"]["cold_load_to_first_score_seconds"]
        / max(cold_load["v3"]["cold_load_to_first_score_seconds"], 1e-12)
    )
    cold_load["v3_sharded_byte_identical"] = sharded_identity

    # ---------------- one-pass vs three-pass throughput --------------- #
    throughput: List[Dict[str, object]] = []
    for batch_size in batch_sizes:
        batch = X_test[:batch_size]
        three_seconds = time_best(lambda: three_pass_detect(detector, batch), repeats)
        one_seconds = time_best(lambda: detector.detect(batch), repeats)
        result = detector.detect(batch)
        agree = bool(
            np.array_equal(result.predictions, detector.predict(batch))
            and np.array_equal(result.scores, detector.score_samples(batch))
            and result.categories == detector.predict_category(batch)
        )
        throughput.append(
            {
                "batch_size": batch_size,
                "three_pass_seconds": three_seconds,
                "detect_seconds": one_seconds,
                "speedup": three_seconds / max(one_seconds, 1e-12),
                "detect_records_per_second": batch_size / max(one_seconds, 1e-12),
                "agrees_with_three_calls": agree,
            }
        )

    # ---------------- float32 serving mode ---------------------------- #
    f32_detector = detector_from_dict(
        detector_to_dict(detector), overrides={"dtype": "float32"}
    )
    batch = X_test[: max(batch_sizes)]
    f64_seconds = time_best(lambda: detector.detect(batch), repeats)
    f32_seconds = time_best(lambda: f32_detector.detect(batch), repeats)
    f64_result = detector.detect(batch)
    f32_result = f32_detector.detect(batch)
    # Numeric drift and leaf flips are different failure modes: a sample
    # near-equidistant between two units can land on the other leaf under
    # float32 (its score then jumps to the other leaf's threshold/label),
    # while samples keeping their leaf see only rounding-level drift.
    same_leaf = f32_result.leaf_index == f64_result.leaf_index
    rel_diff = np.abs(f32_result.scores - f64_result.scores) / np.maximum(
        np.abs(f64_result.scores), 1e-12
    )
    float32 = {
        "batch_size": int(batch.shape[0]),
        "float64_seconds": f64_seconds,
        "float32_seconds": f32_seconds,
        "speedup": f64_seconds / max(f32_seconds, 1e-12),
        "max_relative_score_diff_same_leaf": float(
            rel_diff[same_leaf].max() if same_leaf.any() else 0.0
        ),
        "leaf_agreement_fraction": float(np.mean(same_leaf)),
        "prediction_agreement_fraction": float(
            np.mean(f32_result.predictions == f64_result.predictions)
        ),
    }

    payload = {
        "benchmark": "serving",
        "quick": quick,
        "seed": BENCH_SEED,
        "n_train": n_train,
        "topology": topology,
        "cold_load": cold_load,
        "detect_throughput": throughput,
        "float32": float32,
    }
    write_json_atomic(payload, output_path)
    return payload


def print_report(payload: Dict[str, object]) -> None:
    """Render the JSON payload as the usual benchmark tables."""
    cold = payload["cold_load"]
    print(
        format_table(
            [
                [
                    version,
                    cold[version]["artifact_bytes"],
                    cold[version]["cold_load_to_first_score_seconds"],
                    "yes" if cold[version]["tree_materialized_after_score"] else "no",
                    "yes" if cold[version]["scores_byte_identical_to_in_memory"] else "NO",
                ]
                for version in ("v1", "v2", "v3")
            ],
            ["format", "bytes", "cold_load_s", "tree_built", "byte_identical"],
            title=(
                "Cold load to first score "
                f"(v2 is {cold['speedup_v2_over_v1']:.1f}x over v1, "
                f"v3 is {cold['speedup_v3_over_v2']:.1f}x over v2)"
            ),
        )
    )
    sharded = cold["v3_sharded_byte_identical"]
    print(
        "v3 sharded load paths byte-identical: "
        + ", ".join(
            f"{backend}={'yes' if flag else 'NO'}" for backend, flag in sharded.items()
        )
    )
    print()
    print(
        format_table(
            [
                [
                    row["batch_size"],
                    row["three_pass_seconds"],
                    row["detect_seconds"],
                    round(row["speedup"], 2),
                    int(row["detect_records_per_second"]),
                    "yes" if row["agrees_with_three_calls"] else "NO",
                ]
                for row in payload["detect_throughput"]
            ],
            ["batch", "three_pass_s", "detect_s", "speedup", "detect_rec/s", "agrees"],
            title="detect(): one descent vs predict+score_samples+predict_category",
        )
    )
    print()
    f32 = payload["float32"]
    print(
        format_table(
            [
                [
                    f32["batch_size"],
                    f32["float64_seconds"],
                    f32["float32_seconds"],
                    round(f32["speedup"], 2),
                    f"{f32['max_relative_score_diff_same_leaf']:.2e}",
                    f32["leaf_agreement_fraction"],
                    f32["prediction_agreement_fraction"],
                ]
            ],
            [
                "batch",
                "float64_s",
                "float32_s",
                "speedup",
                "rel_diff_same_leaf",
                "leaf_agree",
                "pred_agree",
            ],
            title="Opt-in float32 serving (float64 stays the bit-exact default)",
        )
    )


def test_serving_benchmark(tmp_path):
    """Quick-mode run under pytest: the acceptance gates for the serving path.

    Writes its JSON to a temp dir so the committed full-run
    ``BENCH_serving.json`` is never overwritten by a quick pass (use the CLI
    to refresh the real artifact).
    """
    payload = run_benchmark(quick=True, output_path=tmp_path / "BENCH_serving.json")
    print()
    print_report(payload)
    cold = payload["cold_load"]
    # A v1 load must rebuild the tree; v2/v3 loads must never touch it...
    assert cold["v1"]["tree_materialized_after_score"]
    assert not cold["v2"]["tree_materialized_after_score"]
    assert not cold["v3"]["tree_materialized_after_score"]
    # ...and every format must reproduce the in-memory detector bit for bit.
    assert cold["v1"]["scores_byte_identical_to_in_memory"]
    assert cold["v2"]["scores_byte_identical_to_in_memory"]
    assert cold["v3"]["scores_byte_identical_to_in_memory"]
    # The mmap-backed sharded load paths stay byte-identical on every backend.
    assert all(cold["v3_sharded_byte_identical"].values())
    # Structural gate first: the v3 load must actually serve from the file
    # mapping — a regression to eager array reads flips this bit without any
    # timing noise.
    assert cold["v3"]["codebook_memory_mapped"]
    # The timing ratio backs it up loosely: ~2-3x is typical in quick mode,
    # a regression to JSON-array parsing lands at ~1.0x, and the 1.2 gate
    # leaves headroom for shared-CI-runner noise on these sub-10ms best-of
    # timings (the full run on the standard model records >= 2x in
    # BENCH_serving.json).
    assert cold["speedup_v3_over_v2"] > 1.2
    # detect() must agree with the three separate calls and never be slower.
    for row in payload["detect_throughput"]:
        assert row["agrees_with_three_calls"]
        assert row["speedup"] > 1.0
    # float32 mode: documented tolerance holds and decisions barely move.
    assert payload["float32"]["max_relative_score_diff_same_leaf"] < 1e-3
    assert payload["float32"]["leaf_agreement_fraction"] > 0.99
    assert payload["float32"]["prediction_agreement_fraction"] > 0.99
    # The compiled artifact must not cost more bytes than the tree format.
    assert cold["v2"]["artifact_bytes"] < 1.25 * cold["v1"]["artifact_bytes"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sizes, fewer repeats")
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH, help="where to write the JSON report"
    )
    args = parser.parse_args()
    payload = run_benchmark(quick=args.quick, output_path=args.output)
    print_report(payload)
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
