"""Figure 4 — sensitivity of accuracy and model size to tau1 / tau2.

Regenerates the parameter-sensitivity figure: detection rate, false-positive
rate and model size over a 2-D grid of (tau1, tau2) values, printed as one
series per tau2 with tau1 on the x-axis.  The timed kernel is one grid cell
(a full GHSOM fit at the middle setting).

Expected shape: accuracy is fairly flat over a broad band of tau values
(robustness claim), while model size grows steeply as tau1 shrinks.
"""

from __future__ import annotations

import numpy as np

from common import default_ghsom_config, make_supervised_workload

from repro.core import GhsomDetector
from repro.eval.sweeps import tau_sensitivity_sweep
from repro.eval.tables import format_series

TAU1_VALUES = (0.6, 0.4, 0.3, 0.2)
TAU2_VALUES = (0.2, 0.1, 0.05)


def test_fig4_tau_sensitivity(benchmark):
    workload = make_supervised_workload(n_train=2500, n_test=1200)
    base = default_ghsom_config()

    rows = tau_sensitivity_sweep(
        workload["X_train"],
        workload["y_train"],
        workload["X_test"],
        workload["y_test"],
        tau1_values=TAU1_VALUES,
        tau2_values=TAU2_VALUES,
        base_config=base,
        random_state=0,
    )
    by_key = {(row["tau1"], row["tau2"]): row for row in rows}

    middle = default_ghsom_config(tau1=0.3, tau2=0.1)
    benchmark.pedantic(
        lambda: GhsomDetector(middle, random_state=0).fit(
            workload["X_train"], workload["y_train"]
        ),
        rounds=1,
        iterations=1,
    )

    print()
    for metric, label in (("f1", "F1"), ("n_units", "units")):
        series = {
            f"tau2={tau2}": [by_key[(tau1, tau2)][metric] for tau1 in TAU1_VALUES]
            for tau2 in TAU2_VALUES
        }
        print(
            format_series(
                list(TAU1_VALUES),
                series,
                x_label="tau1",
                title=f"Figure 4 ({label}) vs tau1, one series per tau2",
            )
        )
        print()

    # Shape: model size grows as tau1 shrinks (for fixed tau2)...
    for tau2 in TAU2_VALUES:
        assert by_key[(0.2, tau2)]["n_units"] >= by_key[(0.6, tau2)]["n_units"]
    # ...while accuracy stays in a usable band across the whole grid.
    for row in rows:
        assert row["f1"] > 0.85
