"""Figure 2 — detection rate and false-positive rate vs detection threshold.

Regenerates the threshold-sensitivity figure: the GHSOM detector is trained
once (one-class mode), then the decision threshold is swept across the score
range and the resulting DR / FPR trade-off is printed — once for the global
threshold strategy and once for the per-unit strategy (the ablation called out
in DESIGN.md).  The timed kernel is the sweep itself.

Expected shape: DR and FPR both decrease monotonically as the threshold rises;
the per-unit strategy achieves a higher DR at matched low FPR.
"""

from __future__ import annotations

import numpy as np

from common import default_ghsom_config, make_oneclass_workload

from repro.core import GhsomDetector
from repro.eval.metrics import detection_rate_at_fpr
from repro.eval.sweeps import threshold_sweep
from repro.eval.tables import format_series, format_table


def test_fig2_threshold_sweep(benchmark):
    workload = make_oneclass_workload()

    scores_by_strategy = {}
    for strategy in ("global", "per_unit"):
        detector = GhsomDetector(
            default_ghsom_config(), threshold_strategy=strategy, random_state=0
        )
        detector.fit(workload["X_train"])
        scores_by_strategy[strategy] = detector.score_samples(workload["X_test"])

    rows = benchmark(
        lambda: threshold_sweep(scores_by_strategy["per_unit"], workload["y_test"], n_points=15)
    )

    thresholds = [row["threshold"] for row in rows]
    print()
    print(
        format_series(
            thresholds,
            {
                "DR": [row["detection_rate"] for row in rows],
                "FPR": [row["false_positive_rate"] for row in rows],
                "F1": [row["f1"] for row in rows],
            },
            x_label="threshold",
            title="Figure 2: DR / FPR / F1 vs decision threshold (per-unit strategy)",
        )
    )

    comparison_rows = []
    for strategy, scores in scores_by_strategy.items():
        for target in (0.01, 0.05):
            comparison_rows.append(
                [strategy, target, detection_rate_at_fpr(workload["y_test"], scores, target)]
            )
    print()
    print(
        format_table(
            comparison_rows,
            ["threshold_strategy", "target_FPR", "DR"],
            title="Figure 2b: threshold-strategy ablation (DR at fixed FPR)",
        )
    )

    detection = [row["detection_rate"] for row in rows]
    fpr = [row["false_positive_rate"] for row in rows]
    assert all(b <= a + 1e-9 for a, b in zip(detection, detection[1:], strict=False))
    assert all(b <= a + 1e-9 for a, b in zip(fpr, fpr[1:], strict=False))
    # Both strategies must remain usable: high DR at 5% FPR.
    for scores in scores_by_strategy.values():
        assert detection_rate_at_fpr(workload["y_test"], scores, 0.05) > 0.8
