"""Pytest configuration for the benchmark harness.

The benchmarks print the reproduced tables/figures; run them with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the printed tables; without it pytest still runs everything and
reports the timing part.)
"""
