"""Table 5 — GHSOM topology statistics as a function of tau1 / tau2.

Regenerates the model-structure table: number of maps, number of units,
hierarchy depth and mean units per map for a grid of (tau1, tau2) settings,
together with the resulting detection quality.  The timed kernel is one full
GHSOM training run at the default setting.

Expected shape: smaller tau1 grows wider layers (more units), smaller tau2
grows deeper hierarchies (more maps).
"""

from __future__ import annotations

from common import default_ghsom_config, make_supervised_workload

from repro.core import Ghsom
from repro.eval.sweeps import tau_sensitivity_sweep
from repro.eval.tables import format_table

TAU1_VALUES = (0.6, 0.3, 0.15)
TAU2_VALUES = (0.2, 0.05)


def test_table5_topology_statistics(benchmark):
    workload = make_supervised_workload(n_train=3000, n_test=1500)
    base = default_ghsom_config(training=default_ghsom_config().training)

    rows = tau_sensitivity_sweep(
        workload["X_train"],
        workload["y_train"],
        workload["X_test"],
        workload["y_test"],
        tau1_values=TAU1_VALUES,
        tau2_values=TAU2_VALUES,
        base_config=base,
        random_state=0,
    )

    benchmark.pedantic(
        lambda: Ghsom(default_ghsom_config()).fit(workload["X_train"]),
        rounds=1,
        iterations=1,
    )

    table_rows = [
        [
            row["tau1"],
            row["tau2"],
            row["n_maps"],
            row["n_units"],
            row["depth"],
            row["detection_rate"],
            row["false_positive_rate"],
            row["fit_seconds"],
        ]
        for row in rows
    ]
    print()
    print(
        format_table(
            table_rows,
            ["tau1", "tau2", "maps", "units", "depth", "DR", "FPR", "fit_s"],
            title="Table 5: GHSOM topology and accuracy vs (tau1, tau2)",
        )
    )

    by_key = {(row["tau1"], row["tau2"]): row for row in rows}
    # Shape: smaller tau1 -> at least as many units; smaller tau2 -> at least as many maps.
    assert by_key[(0.15, 0.05)]["n_units"] >= by_key[(0.6, 0.05)]["n_units"]
    assert by_key[(0.3, 0.05)]["n_maps"] >= by_key[(0.3, 0.2)]["n_maps"]
