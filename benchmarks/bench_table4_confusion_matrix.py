"""Table 4 — GHSOM confusion matrix (5-class classification).

Regenerates the multi-class confusion matrix of the GHSOM detector: rows are
true categories, columns are predicted categories (including ``unknown`` for
records that resemble no training class).  The timed kernel is
``predict_category`` over the test split.

Expected shape: a strongly diagonal matrix for normal/DoS/Probe, with most of
the confusion concentrated in the R2L and U2R rows.
"""

from __future__ import annotations

import numpy as np

from common import default_ghsom_config, make_supervised_workload

from repro.core import GhsomDetector
from repro.eval.metrics import confusion_matrix
from repro.eval.tables import format_table

LABELS = ["normal", "dos", "probe", "r2l", "u2r", "unknown"]


def test_table4_confusion_matrix(benchmark):
    workload = make_supervised_workload()
    detector = GhsomDetector(default_ghsom_config(), random_state=0)
    detector.fit(workload["X_train"], workload["y_train"])

    predicted = benchmark(lambda: detector.predict_category(workload["X_test"]))

    matrix, names = confusion_matrix(workload["test_categories"], predicted, labels=LABELS)
    rows = [[names[row]] + matrix[row].tolist() for row in range(len(names))]
    print()
    print(
        format_table(
            rows,
            ["true \\ predicted"] + names,
            title="Table 4: GHSOM confusion matrix (counts)",
        )
    )

    # Per-class recall for the diagonal-dominance check.
    recalls = {}
    for index, name in enumerate(names):
        total = matrix[index].sum()
        recalls[name] = matrix[index, index] / total if total else None
    recall_rows = [[name, recalls[name]] for name in names if recalls[name] is not None]
    print()
    print(format_table(recall_rows, ["category", "recall"], title="Table 4b: per-class recall"))

    # Shape: normal / dos / probe rows are diagonal-dominant.
    for name in ("normal", "dos", "probe"):
        index = names.index(name)
        row_total = matrix[index].sum()
        if row_total:
            assert matrix[index, index] / row_total > 0.75
    assert np.asarray(matrix).sum() == len(workload["test_categories"])
