"""Distributed-serving benchmark — loopback TCP shard workers.

Measures the remote backend of :mod:`repro.serving.remote` against the
in-process engines on the standard repeated-batch workload and writes the
results to ``BENCH_remote.json`` at the repository root.  Two real
``repro-ids shard-worker`` subprocesses are spawned on 127.0.0.1, so the
numbers include everything a multi-host deployment pays except the physical
network: pickling routed sub-batches, framing, socket round trips, and the
result merge.

* **equivalence** — every remote configuration's scores must be
  byte-identical to the unsharded float64 engine (the hard gate: remote
  workers run the same ``frontier_descent`` on the same row groupings over
  CRC-validated identical arrays);
* **round-trip overhead** — remote throughput vs the unsharded engine and
  vs the serial sharded path isolates what the wire costs on one machine.
  On a single host the remote backend is expected to *lose* to in-process
  serving (that is not what it is for); the recorded ratio is the floor a
  multi-host deployment must clear through parallelism;
* **provisioning** — the by-reference config (workers hold the artifact,
  the wire carries region descriptors) vs by-value (arrays streamed).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_remote.py          # full
    PYTHONPATH=src python benchmarks/bench_remote.py --quick  # fast

or under pytest (quick mode)::

    PYTHONPATH=src python -m pytest benchmarks/bench_remote.py -s
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from common import BENCH_SEED, default_ghsom_config, pinned_blas_env, time_best

from repro.core import GhsomDetector
from repro.core.serialization import write_json_atomic
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator
from repro.eval.tables import format_table
from repro.serving import RemoteBackend, ShardedGhsom, subtrees_from_compiled

#: Where the machine-readable results land (repo root, next to CHANGES.md).
OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_remote.json"

N_TRAIN = 4000
FULL_BATCH_SIZE = 10000
QUICK_BATCH_SIZE = 2000
N_WORKERS = 2

_LISTEN_RE = re.compile(r"listening on ([0-9.]+):(\d+)")


class LoopbackWorker:
    """One ``repro-ids shard-worker`` subprocess on an ephemeral port."""

    def __init__(self, model_path: Optional[Path]) -> None:
        src_dir = str(Path(__file__).resolve().parent.parent / "src")
        # Workers get every BLAS pool pinned to one thread (must happen in
        # the environment before the child imports numpy): the benchmark
        # attributes speedup to sharding, not to BLAS threading inside one
        # worker racing the others for the same cores.
        env = pinned_blas_env(1)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_dir if not existing else src_dir + os.pathsep + existing
        command = [sys.executable, "-m", "repro.cli", "shard-worker", "--listen", "127.0.0.1:0"]
        if model_path is not None:
            command += ["--model", str(model_path)]
        self.process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        # Scan for the banner rather than demanding it first: stderr is
        # merged into stdout, so an interpreter warning must not read as a
        # failed start.
        seen: List[str] = []
        match = None
        while True:
            line = self.process.stdout.readline()
            if not line:
                break  # EOF: the worker exited before listening
            seen.append(line)
            match = _LISTEN_RE.search(line)
            if match:
                break
        if not match:
            self.process.kill()
            raise RuntimeError(f"worker failed to start: {''.join(seen)!r}")
        self.address: Tuple[str, int] = (match.group(1), int(match.group(2)))

    def stop(self) -> None:
        self.process.terminate()
        try:
            self.process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()


def run_benchmark(
    quick: bool = False,
    output_path: Path = OUTPUT_PATH,
    batch_size: int = 0,
) -> Dict[str, object]:
    """Fit one detector, save a v3 bundle, and race remote vs local serving."""
    batch_size = batch_size or (QUICK_BATCH_SIZE if quick else FULL_BATCH_SIZE)
    n_train = 1500 if quick else N_TRAIN
    repeats = 3 if quick else 5

    generator = KddSyntheticGenerator(random_state=BENCH_SEED)
    train = generator.generate(n_train)
    test = generator.generate(batch_size)
    pipeline = PreprocessingPipeline()
    X_train = pipeline.fit_transform(train)
    batch = pipeline.transform(test)
    overrides = {"tau2": 0.03, "min_samples_for_expansion": 25} if quick else {}
    detector = GhsomDetector(default_ghsom_config(**overrides), random_state=BENCH_SEED)
    detector.fit(X_train, [str(category) for category in train.categories])

    with tempfile.TemporaryDirectory(prefix="bench_remote_") as tmp:
        from repro.cli import load_bundle, save_bundle

        bundle = Path(tmp) / "model.json"
        save_bundle(pipeline, detector, bundle, format="binary")
        # The engine must score through the *loaded* (memory-mapped) snapshot:
        # by-reference provisioning only applies to shards that are views into
        # the v3 sidecar, exactly as a serving host would hold them.
        _, served = load_bundle(bundle)
        compiled = served._compiled_model()
        n_subtrees = len(subtrees_from_compiled(compiled))

        reference = compiled.assign_arrays(batch)
        baseline_seconds = time_best(lambda: compiled.assign_arrays(batch), repeats)

        # (row label, n_shards, worker gets --model) — by-reference needs the
        # worker to hold the artifact AND single-subtree shards (views into
        # the mmapped sidecar); the K=4 row measures mixed/by-value shipping.
        configs = [
            ("serial", 4, None),
            ("remote", 4, True),
            ("remote", max(4, n_subtrees), True),
        ]
        if not quick:
            configs.append(("remote", 4, False))  # workers without the artifact

        rows: List[Dict[str, object]] = []
        for backend_name, n_shards, worker_has_model in configs:
            workers: List[LoopbackWorker] = []
            try:
                if backend_name == "remote":
                    workers = [
                        LoopbackWorker(bundle if worker_has_model else None)
                        for _ in range(N_WORKERS)
                    ]
                    backend = RemoteBackend([worker.address for worker in workers])
                else:
                    backend = backend_name
                engine = ShardedGhsom.from_compiled(
                    compiled, n_shards, backend=backend
                )
                try:
                    leaf, dist = engine.assign_arrays(batch)  # warms + provisions
                    identical = bool(
                        np.array_equal(leaf, reference[0])
                        and np.array_equal(dist, reference[1])
                    )
                    seconds = time_best(lambda: engine.assign_arrays(batch), repeats)
                    row: Dict[str, object] = {
                        "backend": backend_name,
                        "n_shards_requested": n_shards,
                        "n_shards_effective": engine.n_shards,
                        "workers": engine.backend.workers,
                        "seconds": seconds,
                        "records_per_second": batch_size / max(seconds, 1e-12),
                        "speedup_vs_unsharded": baseline_seconds / max(seconds, 1e-12),
                        "byte_identical": identical,
                    }
                    if backend_name == "remote":
                        row["worker_has_model"] = bool(worker_has_model)
                        row["stats"] = dict(engine.backend.stats)
                    rows.append(row)
                finally:
                    engine.close()
            finally:
                for worker in workers:
                    worker.stop()

    payload = {
        "benchmark": "remote_serving",
        "quick": quick,
        "seed": BENCH_SEED,
        "n_train": n_train,
        "batch_size": batch_size,
        "n_loopback_workers": N_WORKERS,
        "topology": compiled.describe(),
        "n_root_subtrees": n_subtrees,
        "unsharded": {
            "seconds": baseline_seconds,
            "records_per_second": batch_size / max(baseline_seconds, 1e-12),
        },
        "sharded": rows,
    }
    write_json_atomic(payload, output_path)
    return payload


def print_report(payload: Dict[str, object]) -> None:
    unsharded = payload["unsharded"]
    print(
        format_table(
            [
                [
                    row["backend"],
                    f"{row['n_shards_effective']}/{row['n_shards_requested']}",
                    row["workers"],
                    (
                        "-"
                        if "stats" not in row
                        else "ref"
                        if row["stats"]["provision_reference"]
                        else "value"
                    ),
                    row["seconds"],
                    int(row["records_per_second"]),
                    round(row["speedup_vs_unsharded"], 2),
                    "yes" if row["byte_identical"] else "NO",
                ]
                for row in payload["sharded"]
            ],
            ["backend", "shards", "workers", "provision", "seconds", "rec/s", "speedup", "identical"],
            title=(
                f"Remote serving over {payload['n_loopback_workers']} loopback "
                f"workers, {payload['batch_size']}-record batch (unsharded "
                f"baseline {int(unsharded['records_per_second'])} rec/s)"
            ),
        )
    )


def test_remote_benchmark(tmp_path):
    """Quick-mode run under pytest: the acceptance gates for remote serving.

    Writes its JSON to a temp dir so the committed full-run
    ``BENCH_remote.json`` is never overwritten by a quick pass.
    """
    payload = run_benchmark(quick=True, output_path=tmp_path / "BENCH_remote.json")
    print()
    print_report(payload)
    remote_rows = [row for row in payload["sharded"] if row["backend"] == "remote"]
    assert remote_rows, "no remote configurations ran"
    for row in payload["sharded"]:
        # Hard gate: remote execution reproduces the unsharded engine exactly.
        assert row["byte_identical"], row
    for row in remote_rows:
        # Every task genuinely crossed the wire — failover would mask a
        # broken worker setup as a (slow) passing benchmark.
        assert row["stats"]["remote_tasks"] > 0, row
        assert row["stats"]["failover_tasks"] == 0, row
        # Loopback round trips cost real time, but the overhead must stay
        # bounded: a sub-1/20th-of-baseline remote path means something is
        # pathologically wrong (e.g. reconnecting or re-provisioning per
        # batch) rather than just wire-bound.
        assert row["speedup_vs_unsharded"] > 0.05, row
    by_reference = [
        row
        for row in remote_rows
        if row["worker_has_model"] and row["stats"]["provision_reference"]
    ]
    assert by_reference, "no configuration exercised by-reference provisioning"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sizes, fewer repeats")
    parser.add_argument(
        "--output", type=Path, default=OUTPUT_PATH, help="where to write the JSON report"
    )
    args = parser.parse_args()
    payload = run_benchmark(quick=args.quick, output_path=args.output)
    print_report(payload)
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
