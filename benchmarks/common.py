"""Shared workload construction for the benchmark harness.

Every benchmark regenerates one table or figure of the reconstructed
evaluation plan (see DESIGN.md section 4).  The helpers here build the shared
train/test splits and the detector line-up so individual benchmark files only
describe what is specific to their experiment.
"""

from __future__ import annotations

import os
import time

from typing import Dict, Optional

import numpy as np

from repro.baselines import KMeansDetector, KnnDetector, PcaSubspaceDetector, SomDetector
from repro.core import GhsomConfig, GhsomDetector, SomTrainingConfig
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator

#: Seed used by every benchmark so printed numbers are reproducible run to run.
BENCH_SEED = 2013

#: Training / test sizes used by the detection-quality experiments.
N_TRAIN = 4000
N_TEST = 2000


def default_ghsom_config(**overrides) -> GhsomConfig:
    """The GHSOM configuration used throughout the evaluation (tau1=0.3, tau2=0.05)."""
    base = {
        "tau1": 0.3,
        "tau2": 0.05,
        "max_depth": 3,
        "max_map_size": 100,
        "max_growth_rounds": 30,
        # Expanding units with fewer than ~60 mapped records produces noisy
        # child maps on KDD-scale data; 60 keeps leaves statistically stable.
        "min_samples_for_expansion": 60,
        "training": SomTrainingConfig(epochs=5),
        "random_state": BENCH_SEED,
    }
    base.update(overrides)
    return GhsomConfig(**base)


def make_detectors(random_state: int = BENCH_SEED) -> Dict[str, object]:
    """The detector line-up compared in Tables 2-3 and Figure 1."""
    return {
        "ghsom": GhsomDetector(default_ghsom_config(), random_state=random_state),
        "som": SomDetector(
            10, 10, training=SomTrainingConfig(epochs=10), random_state=random_state
        ),
        "kmeans": KMeansDetector(n_clusters=60, random_state=random_state),
        "pca": PcaSubspaceDetector(variance_fraction=0.95, threshold_mode="percentile"),
        "knn": KnnDetector(n_neighbors=5, max_reference_size=3000, random_state=random_state),
    }


def make_supervised_workload(
    n_train: int = N_TRAIN,
    n_test: int = N_TEST,
    seed: int = BENCH_SEED,
) -> Dict[str, object]:
    """Mixed-traffic train/test split with labels (Tables 1-5, Figures 2-5)."""
    generator = KddSyntheticGenerator(random_state=seed)
    train, test = generator.generate_train_test(n_train, n_test)
    pipeline = PreprocessingPipeline()
    X_train = pipeline.fit_transform(train)
    X_test = pipeline.transform(test)
    return {
        "generator": generator,
        "train": train,
        "test": test,
        "pipeline": pipeline,
        "X_train": X_train,
        "X_test": X_test,
        "y_train": [str(category) for category in train.categories],
        "test_categories": [str(category) for category in test.categories],
        "y_test": test.is_attack.astype(int),
    }


def make_oneclass_workload(
    n_train: int = N_TRAIN,
    n_test: int = N_TEST,
    seed: int = BENCH_SEED,
) -> Dict[str, object]:
    """Normal-only training split plus a mixed test split (Figure 1 ROC)."""
    generator = KddSyntheticGenerator(random_state=seed)
    train = generator.generate_normal(n_train)
    test = generator.generate(n_test)
    pipeline = PreprocessingPipeline()
    X_train = pipeline.fit_transform(train)
    X_test = pipeline.transform(test)
    return {
        "generator": generator,
        "train": train,
        "test": test,
        "pipeline": pipeline,
        "X_train": X_train,
        "X_test": X_test,
        "y_test": test.is_attack.astype(int),
        "test_categories": [str(category) for category in test.categories],
    }


#: Env vars every mainstream BLAS reads for its pool size.  Parallel-speedup
#: claims are only meaningful against a single-threaded baseline, so CI pins
#: all three to 1 for gate runs; benchmarks record them for provenance.
BLAS_THREAD_ENV = ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS")


def blas_threads_env() -> Dict[str, Optional[str]]:
    """Snapshot of the BLAS thread-pool env vars, for benchmark payloads."""
    return {name: os.environ.get(name) for name in BLAS_THREAD_ENV}


def pinned_blas_env(threads: int = 1, base: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """A subprocess environment with every BLAS pool pinned to ``threads``.

    Use when spawning benchmark worker processes: the pinning must be in the
    environment *before* the child imports numpy — BLAS pools size themselves
    at library load, so setting these in an already-running child is too late.
    """
    env = dict(os.environ if base is None else base)
    for name in BLAS_THREAD_ENV:
        env[name] = str(int(threads))
    return env


def usable_cpus() -> int:
    """CPU count the scheduler will actually give this process.

    Affinity-aware (matches the shard backends' default worker pools), so
    recorded throughput is attributed to the cores the run could really use.
    """
    from repro.serving.backends import _default_workers

    return _default_workers()


def runtime_provenance() -> Dict[str, object]:
    """Engine/provider/hardware context recorded by the perf benchmarks.

    Throughput numbers are meaningless without knowing what executed them:
    the resolved compute engine, which fused-kernel provider (if any) backs
    it, the numba version when that provider is numba, and the usable CPU
    count plus BLAS pinning they were measured under.
    """
    from repro.core import kernels

    return {
        "engine_default": kernels.get_default_engine(),
        "fused_providers": list(kernels.available_fused_providers()),
        "fused_provider": kernels.fused_provider(),
        "numba_version": kernels.numba_version(),
        "n_cpus": usable_cpus(),
        "blas_threads_env": blas_threads_env(),
    }


def time_best(function, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``function``.

    Best-of (not mean-of) so transient load spikes on shared machines do not
    inflate the measurement; shared by every timing benchmark.
    """
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return best
