"""Shared workload construction for the benchmark harness.

Every benchmark regenerates one table or figure of the reconstructed
evaluation plan (see DESIGN.md section 4).  The helpers here build the shared
train/test splits and the detector line-up so individual benchmark files only
describe what is specific to their experiment.
"""

from __future__ import annotations

import time

from typing import Dict, Optional

import numpy as np

from repro.baselines import KMeansDetector, KnnDetector, PcaSubspaceDetector, SomDetector
from repro.core import GhsomConfig, GhsomDetector, SomTrainingConfig
from repro.data.preprocess import PreprocessingPipeline
from repro.data.synthetic import KddSyntheticGenerator

#: Seed used by every benchmark so printed numbers are reproducible run to run.
BENCH_SEED = 2013

#: Training / test sizes used by the detection-quality experiments.
N_TRAIN = 4000
N_TEST = 2000


def default_ghsom_config(**overrides) -> GhsomConfig:
    """The GHSOM configuration used throughout the evaluation (tau1=0.3, tau2=0.05)."""
    base = dict(
        tau1=0.3,
        tau2=0.05,
        max_depth=3,
        max_map_size=100,
        max_growth_rounds=30,
        # Expanding units with fewer than ~60 mapped records produces noisy
        # child maps on KDD-scale data; 60 keeps leaves statistically stable.
        min_samples_for_expansion=60,
        training=SomTrainingConfig(epochs=5),
        random_state=BENCH_SEED,
    )
    base.update(overrides)
    return GhsomConfig(**base)


def make_detectors(random_state: int = BENCH_SEED) -> Dict[str, object]:
    """The detector line-up compared in Tables 2-3 and Figure 1."""
    return {
        "ghsom": GhsomDetector(default_ghsom_config(), random_state=random_state),
        "som": SomDetector(
            10, 10, training=SomTrainingConfig(epochs=10), random_state=random_state
        ),
        "kmeans": KMeansDetector(n_clusters=60, random_state=random_state),
        "pca": PcaSubspaceDetector(variance_fraction=0.95, threshold_mode="percentile"),
        "knn": KnnDetector(n_neighbors=5, max_reference_size=3000, random_state=random_state),
    }


def make_supervised_workload(
    n_train: int = N_TRAIN,
    n_test: int = N_TEST,
    seed: int = BENCH_SEED,
) -> Dict[str, object]:
    """Mixed-traffic train/test split with labels (Tables 1-5, Figures 2-5)."""
    generator = KddSyntheticGenerator(random_state=seed)
    train, test = generator.generate_train_test(n_train, n_test)
    pipeline = PreprocessingPipeline()
    X_train = pipeline.fit_transform(train)
    X_test = pipeline.transform(test)
    return {
        "generator": generator,
        "train": train,
        "test": test,
        "pipeline": pipeline,
        "X_train": X_train,
        "X_test": X_test,
        "y_train": [str(category) for category in train.categories],
        "test_categories": [str(category) for category in test.categories],
        "y_test": test.is_attack.astype(int),
    }


def make_oneclass_workload(
    n_train: int = N_TRAIN,
    n_test: int = N_TEST,
    seed: int = BENCH_SEED,
) -> Dict[str, object]:
    """Normal-only training split plus a mixed test split (Figure 1 ROC)."""
    generator = KddSyntheticGenerator(random_state=seed)
    train = generator.generate_normal(n_train)
    test = generator.generate(n_test)
    pipeline = PreprocessingPipeline()
    X_train = pipeline.fit_transform(train)
    X_test = pipeline.transform(test)
    return {
        "generator": generator,
        "train": train,
        "test": test,
        "pipeline": pipeline,
        "X_train": X_train,
        "X_test": X_test,
        "y_test": test.is_attack.astype(int),
        "test_categories": [str(category) for category in test.categories],
    }


def time_best(function, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``function``.

    Best-of (not mean-of) so transient load spikes on shared machines do not
    inflate the measurement; shared by every timing benchmark.
    """
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return best
