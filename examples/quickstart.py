"""Quickstart: train a GHSOM network-traffic anomaly detector in ~30 lines.

Run with::

    python examples/quickstart.py

The script generates a KDD-style synthetic traffic dataset, preprocesses it,
trains the GHSOM detector on labelled traffic, evaluates it on a held-out
split, and saves / reloads the trained model.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro import (
    GhsomConfig,
    GhsomDetector,
    KddSyntheticGenerator,
    PreprocessingPipeline,
    binary_metrics,
    format_table,
    load_detector,
    save_detector,
)


#: Set REPRO_EXAMPLES_QUICK=1 (the examples smoke test does) to shrink the
#: workload so the script finishes in seconds while exercising every step.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")


def main() -> None:
    # 1. Data: a labelled KDD-style traffic dataset (stand-in for KDD Cup 99).
    generator = KddSyntheticGenerator(random_state=0)
    n_train, n_test = (800, 400) if QUICK else (4000, 2000)
    train, test = generator.generate_train_test(n_train=n_train, n_test=n_test)
    print(f"training records: {len(train)}, test records: {len(test)}")
    print(f"training class mix: {train.class_counts()}")

    # 2. Preprocessing: one-hot encode symbols, log-compress volumes, scale to [0, 1].
    pipeline = PreprocessingPipeline()
    X_train = pipeline.fit_transform(train)
    X_test = pipeline.transform(test)

    # 3. Model: a growing hierarchical SOM with the default growth thresholds.
    detector = GhsomDetector(GhsomConfig(tau1=0.3, tau2=0.05, max_depth=3), random_state=0)
    detector.fit(X_train, train.categories)
    print(f"trained GHSOM topology: {detector.topology_summary()}")

    # 4. Detection: binary alarms plus best-effort attack categories.
    alarms = detector.predict(X_test)
    metrics = binary_metrics(test.is_attack.astype(int), alarms)
    print()
    print(
        format_table(
            [[metrics.detection_rate, metrics.false_positive_rate, metrics.precision, metrics.f1]],
            ["detection_rate", "false_positive_rate", "precision", "f1"],
            title="Held-out detection performance",
        )
    )

    # 5. Persistence: the whole detector (hierarchy, labels, thresholds) is one
    # JSON file — or, with format="binary", a JSON + .npz pair whose arrays
    # are memory-mapped on load for near-instant cold starts.
    with tempfile.TemporaryDirectory() as directory:
        path = Path(directory) / "ghsom_detector.json"
        save_detector(detector, path)
        reloaded = load_detector(path)
        assert (reloaded.predict(X_test) == alarms).all()
        print(f"\nmodel saved to and reloaded from {path.name}: predictions identical")

        binary_path = Path(directory) / "ghsom_detector_binary.json"
        save_detector(detector, binary_path, format="binary")
        mmap_loaded = load_detector(binary_path)
        assert (mmap_loaded.predict(X_test) == alarms).all()
        print(
            f"binary artifact ({binary_path.name} + "
            f"{binary_path.stem}.npz) mmap-loaded: predictions identical"
        )


if __name__ == "__main__":
    main()
