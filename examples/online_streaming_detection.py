"""Online detection under concept drift: static vs adaptive GHSOM.

A two-phase traffic stream is replayed through the streaming pipeline.  In the
second half the *normal* traffic becomes heavier (benign drift).  A static
detector starts raising false alarms on the new normal; the adaptive online
wrapper re-calibrates its effective threshold and recovers.

Run with::

    python examples/online_streaming_detection.py
"""

from __future__ import annotations

import os

from repro import GhsomConfig, GhsomDetector, KddSyntheticGenerator, OnlineDetector, StreamingPipeline
from repro.eval.tables import format_series, format_table
from repro.streaming.pipeline import make_drifting_stream

#: Set REPRO_EXAMPLES_QUICK=1 (the examples smoke test does) to shrink the
#: workload so the script finishes in seconds while exercising every step.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")

WINDOW = 200 if QUICK else 500


def run_mode(adaptation: str, X, y, X_calibration):
    detector = GhsomDetector(GhsomConfig(tau1=0.3, tau2=0.05, max_depth=3), random_state=0)
    detector.fit(X_calibration)
    online = OnlineDetector(detector, adaptation=adaptation, ewma_alpha=0.05)
    pipeline = StreamingPipeline(online, window_size=WINDOW)
    reports = pipeline.run(X, y)
    return reports, pipeline.summary()


def main() -> None:
    half = 800 if QUICK else 3000
    X, y, drift_index = make_drifting_stream(
        lambda seed: KddSyntheticGenerator(random_state=seed),
        n_before=half,
        n_after=half,
        drift_scale=2.5,
        attack_fraction=0.1,
        random_state=0,
    )
    calibration = X[:drift_index][y[:drift_index] == 0][: 600 if QUICK else 2500]
    print(f"stream: {X.shape[0]} records, drift begins at record {drift_index}")

    static_reports, static_summary = run_mode("none", X, y, calibration)
    adaptive_reports, adaptive_summary = run_mode("threshold", X, y, calibration)

    windows = [report.window_index for report in static_reports]
    print()
    print(
        format_series(
            windows,
            {
                "static_FPR": [report.false_positive_rate for report in static_reports],
                "adaptive_FPR": [report.false_positive_rate for report in adaptive_reports],
                "static_DR": [report.detection_rate for report in static_reports],
                "adaptive_DR": [report.detection_rate for report in adaptive_reports],
            },
            x_label="window",
            title=f"Per-window metrics (drift at window {drift_index // WINDOW})",
        )
    )

    print()
    print(
        format_table(
            [
                ["static"] + [static_summary[key] for key in ("mean_detection_rate", "mean_false_positive_rate")],
                ["adaptive"] + [adaptive_summary[key] for key in ("mean_detection_rate", "mean_false_positive_rate")],
            ],
            ["mode", "mean_DR", "mean_FPR"],
            title="Whole-stream summary",
        )
    )


if __name__ == "__main__":
    main()
