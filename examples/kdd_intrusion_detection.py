"""Intrusion-detection study on KDD-style traffic: GHSOM vs the baselines.

This is the example closest to the paper's evaluation: all detectors are
trained on the same labelled traffic, then compared on overall metrics,
per-attack-category detection rates and (for GHSOM) the 5-class confusion
matrix.

Run with::

    python examples/kdd_intrusion_detection.py
"""

from __future__ import annotations

import os

from repro import (
    GhsomConfig,
    GhsomDetector,
    KMeansDetector,
    KnnDetector,
    PcaSubspaceDetector,
    SomDetector,
    SomTrainingConfig,
    confusion_matrix,
    format_table,
    per_category_detection_rates,
)
from repro.eval.experiments import DetectorResult, ExperimentRunner

CATEGORIES = ("normal", "dos", "probe", "r2l", "u2r")

#: Set REPRO_EXAMPLES_QUICK=1 (the examples smoke test does) to shrink the
#: workload so the script finishes in seconds while exercising every step.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")


def main() -> None:
    n_train, n_test = (700, 350) if QUICK else (4000, 2000)
    epochs = 2 if QUICK else 5
    runner = ExperimentRunner(n_train=n_train, n_test=n_test, random_state=0)
    detectors = {
        "ghsom": GhsomDetector(
            GhsomConfig(tau1=0.3, tau2=0.05, max_depth=3, training=SomTrainingConfig(epochs=epochs)),
            random_state=0,
        ),
        "som": SomDetector(10, 10, training=SomTrainingConfig(epochs=2 if QUICK else 10), random_state=0),
        "kmeans": KMeansDetector(n_clusters=20 if QUICK else 60, random_state=0),
        "pca": PcaSubspaceDetector(threshold_mode="percentile"),
        "knn": KnnDetector(max_reference_size=500 if QUICK else 3000, random_state=0),
    }
    results = runner.run(detectors, with_confusion=True)

    # --- Overall comparison -------------------------------------------------
    rows = [results[name].summary_row() for name in detectors]
    print(
        format_table(
            rows, DetectorResult.summary_headers(), title="Overall detection performance"
        )
    )

    # --- Per-category detection rates ---------------------------------------
    prepared = runner.prepare()
    per_category_rows = []
    for name, detector in detectors.items():
        predictions = detector.predict(prepared["X_test"])
        rates = per_category_detection_rates(prepared["test_categories"], predictions)
        per_category_rows.append([name] + [rates.get(category) for category in CATEGORIES])
    print()
    print(
        format_table(
            per_category_rows,
            ["detector", "FPR(normal)", "DR(dos)", "DR(probe)", "DR(r2l)", "DR(u2r)"],
            title="Per-category detection rates",
        )
    )

    # --- GHSOM confusion matrix ----------------------------------------------
    ghsom = detectors["ghsom"]
    predicted_categories = ghsom.predict_category(prepared["X_test"])
    matrix, labels = confusion_matrix(
        prepared["test_categories"],
        predicted_categories,
        labels=list(CATEGORIES) + ["unknown"],
    )
    confusion_rows = [[labels[row]] + matrix[row].tolist() for row in range(len(labels))]
    print()
    print(
        format_table(
            confusion_rows,
            ["true \\ predicted"] + labels,
            title="GHSOM confusion matrix (counts)",
        )
    )

    # --- Model structure ------------------------------------------------------
    print()
    topology = ghsom.topology_summary()
    print(
        format_table(
            [[topology["n_maps"], topology["n_units"], topology["depth"], topology["tau1"], topology["tau2"]]],
            ["maps", "units", "depth", "tau1", "tau2"],
            title="GHSOM topology",
        )
    )


if __name__ == "__main__":
    main()
