"""Parameter study: how tau1 / tau2 and the threshold strategy shape the GHSOM.

This example reproduces the sensitivity analysis interactively: it sweeps the
two growth thresholds over a small grid, reports model size and accuracy for
each setting, and compares the global vs per-unit alarm-threshold strategies
at fixed false-positive budgets.

Run with::

    python examples/parameter_tuning.py
"""

from __future__ import annotations

import os

from repro import GhsomConfig, GhsomDetector, KddSyntheticGenerator, PreprocessingPipeline, SomTrainingConfig
from repro.eval.metrics import detection_rate_at_fpr
from repro.eval.sweeps import tau_sensitivity_sweep
from repro.eval.tables import format_table

#: Set REPRO_EXAMPLES_QUICK=1 (the examples smoke test does) to shrink the
#: workload so the script finishes in seconds while exercising every step.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")


def main() -> None:
    generator = KddSyntheticGenerator(random_state=0)
    n_train, n_test = (700, 400) if QUICK else (2500, 1200)
    train, test = generator.generate_train_test(n_train, n_test)
    pipeline = PreprocessingPipeline()
    X_train = pipeline.fit_transform(train)
    X_test = pipeline.transform(test)
    y_train = [str(category) for category in train.categories]
    y_test = test.is_attack.astype(int)

    # --- tau sweep -------------------------------------------------------------
    base = GhsomConfig(
        max_depth=3, max_map_size=100, training=SomTrainingConfig(epochs=2 if QUICK else 4)
    )
    rows = tau_sensitivity_sweep(
        X_train,
        y_train,
        X_test,
        y_test,
        tau1_values=(0.5, 0.3) if QUICK else (0.5, 0.3, 0.2),
        tau2_values=(0.1,) if QUICK else (0.1, 0.05),
        base_config=base,
        random_state=0,
    )
    print(
        format_table(
            [
                [row["tau1"], row["tau2"], row["n_maps"], row["n_units"], row["depth"],
                 row["detection_rate"], row["false_positive_rate"], row["fit_seconds"]]
                for row in rows
            ],
            ["tau1", "tau2", "maps", "units", "depth", "DR", "FPR", "fit_s"],
            title="GHSOM size and accuracy across (tau1, tau2)",
        )
    )

    # --- threshold-strategy ablation (one-class mode) ---------------------------
    normal_train = generator.generate_normal(700 if QUICK else 2500)
    oneclass_pipeline = PreprocessingPipeline().fit(normal_train)
    X_normal = oneclass_pipeline.transform(normal_train)
    X_eval = oneclass_pipeline.transform(test)
    ablation_rows = []
    for strategy in ("global", "per_unit"):
        detector = GhsomDetector(
            GhsomConfig(tau1=0.3, tau2=0.05, max_depth=3),
            threshold_strategy=strategy,
            random_state=0,
        )
        detector.fit(X_normal)
        scores = detector.score_samples(X_eval)
        for budget in (0.01, 0.05):
            ablation_rows.append([strategy, budget, detection_rate_at_fpr(y_test, scores, budget)])
    print()
    print(
        format_table(
            ablation_rows,
            ["threshold_strategy", "FPR_budget", "detection_rate"],
            title="Threshold-strategy ablation (one-class training)",
        )
    )


if __name__ == "__main__":
    main()
