"""From per-record alarms to operator-ready incidents, with an ensemble detector.

This example shows the last mile of the detection pipeline: a seed-diverse
GHSOM ensemble scores a simulated monitoring window in one-class mode, and the
alert aggregator turns the stream of per-connection alarms into the incident
table an operator would triage.  Two alarm tiers are used, which is standard
triage practice: every score above the calibrated threshold (1.0) is counted
as a raw alarm, but incidents are formed from the *high-confidence* alarms
(score above 2x the threshold) so that borderline background noise does not
glue separate episodes together.

Run with::

    python examples/incident_reporting.py
"""

from __future__ import annotations

import os

from repro import (
    AlertAggregator,
    AttackInjection,
    EnsembleDetector,
    GhsomConfig,
    GhsomDetector,
    PreprocessingPipeline,
    SomTrainingConfig,
    TrafficSimulator,
    format_table,
)
from repro.netsim import NetworkModel
from repro.streaming.alerts import Incident

#: Raw alarms use the calibrated threshold (1.0); incidents use this tier.
HIGH_CONFIDENCE_SCORE = 2.0

#: Set REPRO_EXAMPLES_QUICK=1 (the examples smoke test does) to shrink the
#: workload so the script finishes in seconds while exercising every step.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")

DURATION = 150.0 if QUICK else 400.0
ATTACKS = (
    (("portsweep", 40.0), ("neptune", 90.0))
    if QUICK
    else (("portsweep", 60.0), ("neptune", 180.0), ("guess_passwd", 300.0))
)
N_MEMBERS = 2 if QUICK else 3


def make_member(seed: int) -> GhsomDetector:
    config = GhsomConfig(
        tau1=0.3,
        tau2=0.05,
        max_depth=3,
        max_map_size=100,
        training=SomTrainingConfig(epochs=3 if QUICK else 8),
        random_state=seed,
    )
    return GhsomDetector(config, random_state=seed)


def main() -> None:
    network = NetworkModel(random_state=7)

    # Calibrate the ensemble on an attack-free window of the same network.
    calibration = TrafficSimulator(
        duration_seconds=DURATION, sessions_per_second=3.0, network=network, random_state=20
    ).run()
    pipeline = PreprocessingPipeline()
    X_calibration = pipeline.fit_transform(calibration)
    ensemble = EnsembleDetector(
        [lambda s=seed: make_member(s) for seed in range(N_MEMBERS)]
    )
    ensemble.fit(X_calibration)
    print(
        f"calibrated a {N_MEMBERS}-member GHSOM ensemble on "
        f"{len(calibration)} benign connections"
    )

    # Monitor a window with injected attack episodes.
    simulator = TrafficSimulator(
        duration_seconds=DURATION,
        sessions_per_second=3.0,
        network=network,
        injections=[AttackInjection(name, start_time=start) for name, start in ATTACKS],
        random_state=21,
    )
    monitored, events = simulator.run_with_events()
    X_monitored = pipeline.transform(monitored)
    scores = ensemble.score_samples(X_monitored)
    raw_alarms = (scores > 1.0).astype(int)
    strong_alarms = (scores > HIGH_CONFIDENCE_SCORE).astype(int)
    print(
        f"monitored window: {len(monitored)} connections, "
        f"{int(raw_alarms.sum())} raw alarms, {int(strong_alarms.sum())} high-confidence alarms"
    )

    # Aggregate the high-confidence alarms into incidents.
    aggregator = AlertAggregator(gap_seconds=10.0, min_records=10)
    incidents = aggregator.aggregate(
        [event.timestamp for event in events],
        strong_alarms,
        scores=scores,
    )
    print()
    injected = ", ".join(f"{name} at {start:.0f}s" for name, start in ATTACKS)
    print(
        format_table(
            [incident.as_row() for incident in incidents],
            Incident.headers(),
            title=f"Incidents (injected: {injected})",
        )
    )
    print()
    summary = aggregator.summarize(incidents)
    print(
        format_table(
            [[summary["n_incidents"], summary["n_alarmed_records"], summary["largest_incident"],
              f"{summary['longest_duration']:.0f}s"]],
            ["incidents", "alarmed_records", "largest_incident", "longest_duration"],
            title="Summary",
        )
    )


if __name__ == "__main__":
    main()
