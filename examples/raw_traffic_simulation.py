"""Raw-traffic scenario: simulate an enterprise network, inject attacks, detect them.

Unlike the other examples, this one does not sample KDD-style records directly:
it simulates flow-level traffic for a small enterprise network (web, mail,
DNS, FTP sessions), injects four attack episodes into a monitoring window,
derives the 41 KDD features from the raw event stream with the causal feature
extractor, and runs a one-class GHSOM detector that was calibrated on an
attack-free window of the same network.

Run with::

    python examples/raw_traffic_simulation.py
"""

from __future__ import annotations

import os

import numpy as np

from repro import (
    AttackInjection,
    GhsomConfig,
    GhsomDetector,
    PreprocessingPipeline,
    TrafficSimulator,
    binary_metrics,
    format_table,
    per_category_detection_rates,
)
from repro.netsim import NetworkModel

#: Set REPRO_EXAMPLES_QUICK=1 (the examples smoke test does) to shrink the
#: workload so the script finishes in seconds while exercising every step.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")

DURATION = 150.0 if QUICK else 600.0
ATTACKS = (
    (("neptune", 40.0), ("portsweep", 100.0))
    if QUICK
    else (
        ("neptune", 80.0),
        ("portsweep", 220.0),
        ("guess_passwd", 360.0),
        ("smurf", 480.0),
    )
)


def main() -> None:
    network = NetworkModel(n_internal_hosts=40, n_external_hosts=150, n_servers=8, random_state=1)

    # --- Calibration window: one attack-free period of normal operations ------
    calibration_sim = TrafficSimulator(
        duration_seconds=DURATION, sessions_per_second=3.0, network=network, random_state=10
    )
    calibration = calibration_sim.run()
    print(f"calibration window: {len(calibration)} connections, classes {calibration.class_counts()}")

    # --- Monitored window: same network, injected attack episodes -------------
    monitored_sim = TrafficSimulator(
        duration_seconds=DURATION,
        sessions_per_second=3.0,
        network=network,
        injections=[AttackInjection(name, start_time=start) for name, start in ATTACKS],
        random_state=11,
    )
    monitored, events = monitored_sim.run_with_events()
    print(f"monitored window:   {len(monitored)} connections, classes {monitored.class_counts()}")

    # --- Features and one-class detector ---------------------------------------
    pipeline = PreprocessingPipeline()
    X_calibration = pipeline.fit_transform(calibration)
    X_monitored = pipeline.transform(monitored)
    detector = GhsomDetector(GhsomConfig(tau1=0.3, tau2=0.05, max_depth=3), random_state=0)
    detector.fit(X_calibration)  # no labels: normal-only calibration

    alarms = detector.predict(X_monitored)
    truth = monitored.is_attack.astype(int)
    metrics = binary_metrics(truth, alarms)
    print()
    print(
        format_table(
            [[metrics.detection_rate, metrics.false_positive_rate, metrics.precision]],
            ["detection_rate", "false_positive_rate", "precision"],
            title="One-class detection on the monitored window",
        )
    )

    rates = per_category_detection_rates([str(c) for c in monitored.categories], alarms)
    print()
    print(
        format_table(
            [[category, rate] for category, rate in sorted(rates.items())],
            ["category", "alarm_fraction"],
            title="Alarm fraction per traffic category",
        )
    )

    # --- Alarm timeline: when did the detector fire? ---------------------------
    timestamps = np.array([event.timestamp for event in events])
    bins = np.arange(0.0, DURATION + 1.0, 30.0 if QUICK else 60.0)
    rows = []
    for start, stop in zip(bins[:-1], bins[1:], strict=True):
        mask = (timestamps >= start) & (timestamps < stop)
        if not mask.any():
            continue
        rows.append(
            [
                f"{int(start)}-{int(stop)}s",
                int(mask.sum()),
                float(truth[mask].mean()),
                float(alarms[mask].mean()),
            ]
        )
    print()
    injected = ", ".join(f"{name} at {start:.0f}s" for name, start in ATTACKS)
    print(
        format_table(
            rows,
            ["interval", "connections", "true_attack_fraction", "alarm_fraction"],
            title=f"Alarm timeline (injected: {injected})",
        )
    )


if __name__ == "__main__":
    main()
